// Package metrics exercises the obsconst analyzer against the fixture
// catalog package.
package metrics

import "fixture/internal/obs"

var reg obs.Registry

var (
	runs    = reg.NewCounter(obs.MRuns, "runs")
	depth   = reg.NewGauge(obs.MDepth, "depth")
	lat     = reg.NewHistogram(obs.MLatency, "latency")
	byShard = reg.NewCounterVec(obs.MRuns, "runs by shard", "shard")

	rogue    = reg.NewCounter("fixture_rogue_total", "not in the catalog") //!want obsconst
	computed = reg.NewCounter(metricName(), "not a constant")              //!want obsconst
	badKind  = reg.NewCounter(obs.MDepth, "counter without _total")        //!want obsconst
	badLabel = reg.NewCounterVec(obs.MRuns, "bad label", "__shard")        //!want obsconst
)

func metricName() string { return "fixture_dynamic_total" }
