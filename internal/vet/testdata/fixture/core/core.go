// Package core exercises ctxpoll rule 2: unbounded wait loops must poll
// interruption.
package core

import (
	"context"
	"time"
)

type runtime struct {
	Interrupt func() error
}

func (r *runtime) phase() int { return 0 }

func waitDeaf(ch chan int) {
	for { //!want ctxpoll
		select {
		case <-ch:
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
}

func waitPolling(r *runtime, ch chan int) {
	for {
		if r.Interrupt() != nil {
			return
		}
		select {
		case <-ch:
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
}

func waitCtx(ctx context.Context, ch chan int) {
	for ctx.Err() == nil {
		select {
		case <-ch:
			return
		default:
		}
	}
}

func waitPhase(r *runtime, ch chan int) {
	for {
		if r.phase() == 1 {
			return
		}
		<-ch
	}
}

func waitBounded(ch chan int) {
	for i := 0; i < 10; i++ {
		<-ch
	}
}

func waitAnnotated(ch chan int) {
	for { //ir:nopoll fixture: the protocol itself wakes and ends this wait
		if <-ch == 0 {
			return
		}
	}
}

func noBlocking(n int) int {
	total := 0
	for n > 0 {
		total += n
		n--
	}
	return total
}
