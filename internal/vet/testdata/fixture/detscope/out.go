package detscope

import "time"

func unscopedClock() time.Time { return time.Now() }
