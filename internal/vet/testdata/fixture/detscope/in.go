// Package detscope checks file-scoped detpure configuration: only in.go is
// inside the configured scope.
package detscope

import "time"

func scopedClock() time.Time {
	return time.Now() //!want detpure
}
