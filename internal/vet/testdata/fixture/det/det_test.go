package det

import "time"

// Test files run on host time by design: no detpure finding expected here.
func helperClock() time.Time { return time.Now() }
