// Package det exercises the detpure analyzer: wall-clock reads, global
// randomness, and map-iteration order.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() //!want detpure
}

func clockAllowed() time.Time {
	return time.Now() //ir:wallclock fixture telemetry read
}

func clockStacked() time.Time {
	//ir:wallclock fixture stacked annotation block
	return time.Now()
}

func roll() int {
	return rand.Intn(6) //!want detpure
}

func rollSeeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func orderEscapes(m map[string]int) []string {
	var out []string
	for k := range m { //!want detpure
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func orderAnnotated(m map[string]int) []string {
	var out []string
	for k := range m { //ir:nondet fixture: order genuinely irrelevant here
		out = append(out, k)
	}
	return out
}
