// Package annot exercises the annotation-grammar analyzer.
package annot

import "time"

func wellFormed() time.Time {
	return time.Now() //ir:wallclock fixture: reviewed read
}

// !want annot
var typo = 1 //ir:wallclok reviewed read

// !want annot
var bare = 2 //ir:wallclock
