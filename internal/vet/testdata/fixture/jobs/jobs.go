// Package jobs exercises ctxpoll rule 1: sched.Job Run closures must use
// their context.
package jobs

import (
	"context"

	"fixture/internal/sched"
)

func makeJobs(work func() error) []sched.Job {
	return []sched.Job{
		{Name: "ok", Run: func(ctx context.Context) (any, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, work()
		}},
		{Name: "forwards", Run: func(ctx context.Context) (any, error) {
			return nil, run(ctx)
		}},
		{Name: "unnamed", Run: func(context.Context) (any, error) { return nil, work() }},      //!want ctxpoll
		{Name: "underscore", Run: func(_ context.Context) (any, error) { return nil, work() }}, //!want ctxpoll
		{Name: "dropped", Run: func(ctx context.Context) (any, error) { return nil, work() }},  //!want ctxpoll
		//ir:noctx fixture: cancellation is wired through the work closure itself
		{Name: "annotated", Run: func(context.Context) (any, error) { return nil, work() }},
	}
}

func patch(j *sched.Job, work func() error) {
	j.Run = func(context.Context) (any, error) { return nil, work() } //!want ctxpoll
}

func run(ctx context.Context) error { return ctx.Err() }
