// Package hostrace is the fixture stand-in for the repo's race-detector
// probe.
package hostrace

var Enabled bool
