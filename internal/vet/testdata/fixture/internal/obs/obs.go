// Package obs is the fixture stand-in for the repo's internal/obs catalog:
// a Registry with the constructor shapes obsconst checks, and the M*
// constants forming the catalog.
package obs

type Registry struct{}

func (r *Registry) NewCounter(name, help string) int           { return 0 }
func (r *Registry) NewCounterVec(name, help, label string) int { return 0 }
func (r *Registry) NewGauge(name, help string) int             { return 0 }
func (r *Registry) NewGaugeVec(name, help, label string) int   { return 0 }
func (r *Registry) NewHistogram(name, help string) int         { return 0 }

const (
	MRuns    = "fixture_runs_total"
	MDepth   = "fixture_queue_depth"
	MLatency = "fixture_latency_seconds"
)
