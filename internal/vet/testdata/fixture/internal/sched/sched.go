// Package sched is the fixture stand-in for the repo's scheduler: the Job
// shape whose Run closures ctxpoll checks.
package sched

import "context"

type Job struct {
	Name string
	Run  func(context.Context) (any, error)
}
