// Package atomics exercises the atomicmix analyzer: a field touched through
// sync/atomic anywhere must be touched atomically everywhere.
package atomics

import "sync/atomic"

type counter struct {
	n int64
	m int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) readAtomic() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) readPlain() int64 {
	return c.n //!want atomicmix
}

func (c *counter) readAnnotated() int64 {
	return c.n //ir:nonatomic fixture: single-goroutine teardown read
}

func (c *counter) plainOnly() int64 {
	c.m++
	return c.m
}

func construct() *counter {
	return &counter{n: 7}
}
