// Package guarded exercises the guardedby analyzer.
package guarded

import "sync"

type table struct {
	mu sync.Mutex
	// guarded by mu
	count int
}

func (t *table) inc() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
}

func (t *table) peek() int {
	return t.count //!want guardedby
}

func (t *table) peekLocked() int {
	return t.count
}

func (t *table) peekAnnotated() int {
	return t.count //ir:unguarded fixture: racy snapshot is tolerated
}

func fresh() *table {
	t := &table{}
	t.count = 1
	return t
}

type global struct {
	// guarded by pkgMu
	state int
}

var pkgMu sync.Mutex

func (g *global) set(v int) {
	pkgMu.Lock()
	defer pkgMu.Unlock()
	g.state = v
}

func (g *global) get() int {
	return g.state //!want guardedby
}

type malformed struct {
	// guarded by
	x int //!want guardedby
}
