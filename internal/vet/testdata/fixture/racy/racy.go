// Package racy exercises the racyskip analyzer (its tests do).
package racy
