package racy

import (
	"testing"

	"fixture/internal/hostrace"
)

func TestGuardedUnannotated(t *testing.T) { //!want racyskip
	if hostrace.Enabled {
		t.Skip("racy workload")
	}
}

//ir:racy fixture: the data race is the property under test
func TestGuardedAnnotated(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("racy workload")
	}
}

//ir:racy fixture: stale annotation with no hostrace guard
func TestAnnotatedUnguarded(t *testing.T) { //!want racyskip
	_ = t
}

func TestPlain(t *testing.T) { _ = t }
