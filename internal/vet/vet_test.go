package vet

// Fixture-driven analyzer tests, analysistest-style: the module under
// testdata/fixture contains one package per analyzer with hit, non-hit, and
// //ir:-escape cases. Expected findings are marked in the fixture source
// with `//!want <analyzer>` comments — trailing on the flagged line, or on
// a line of their own applying to the next line (gofmt renders the
// standalone form as `// !want`). The test loads the whole fixture module
// through the real loader and requires the diagnostic set to match the
// marker set exactly, both directions.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`//\s*!want\s+([a-z]+)`)

// fixtureAnalyzers mirrors Suite() with the fixture module's package paths.
func fixtureAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDetPure(map[string][]string{
			"fixture/det":      nil,
			"fixture/detscope": {"in.go"},
		}),
		NewAtomicMix(),
		NewGuardedBy(),
		NewObsConst("internal/obs"),
		NewCtxPoll("internal/sched", "fixture/core"),
		NewRacySkip("internal/hostrace"),
		NewAnnot(),
	}
}

func TestAnalyzersOnFixtures(t *testing.T) {
	root, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(LoadConfig{Dir: root, Patterns: []string{"./..."}, Tests: true})
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	diags, err := Run(pkgs, fixtureAnalyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	want := scanWants(t, root)
	got := map[string]int{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		got[fmt.Sprintf("%s:%d:%s", rel, d.Pos.Line, d.Analyzer)]++
	}

	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		switch {
		case got[k] > 0 && want[k] == 0:
			t.Errorf("unexpected diagnostic at %s", k)
		case got[k] == 0 && want[k] > 0:
			t.Errorf("missing expected diagnostic at %s", k)
		}
	}
}

// scanWants collects the `//!want <analyzer>` markers from every fixture
// file as "relpath:line:analyzer" keys.
func scanWants(t *testing.T, root string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			at := line
			if strings.HasPrefix(strings.TrimSpace(sc.Text()), "//") {
				at = line + 1 // marker on its own line applies to the next
			}
			want[fmt.Sprintf("%s:%d:%s", rel, at, m[1])]++
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scan fixtures: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("no //!want markers found in fixtures")
	}
	return want
}
