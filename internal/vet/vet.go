// Package vet implements ir-vet, the repo's custom static-analysis suite.
//
// The runtime's whole record-and-replay contract rests on invariants the Go
// compiler never checks: replay-critical packages must be deterministic (no
// wall clock, no global randomness, no map-iteration-order dependence),
// shared state must follow the publication discipline the -race CI job
// polices dynamically, metric registration must stay inside the
// internal/obs catalog, and cancellation must keep being polled. Each
// invariant here is a small analyzer over the type-checked AST, in the
// spirit of go/analysis, built on the standard library only (the container
// has no golang.org/x/tools): an Analyzer inspects one Pass — one
// type-checked package — and reports Diagnostics.
//
// Suppressions are never silent: every escape hatch is a reviewed
// `//ir:<verb> <reason>` comment whose grammar the `annot` analyzer itself
// enforces. See docs/STATIC_ANALYSIS.md for the catalog and the annotation
// grammar.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the Pass; it returns an error only
// for internal failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	annots map[annotKey][]Annotation
	diags  *[]Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Annotation is one parsed //ir:<verb> <reason> marker comment.
type Annotation struct {
	Verb   string
	Reason string
	Pos    token.Pos
}

type annotKey struct {
	file string
	line int
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the line holding pos, or the line directly above
// it, carries an //ir:<verb> annotation — the escape-hatch convention every
// analyzer shares. The annotation must carry a reason to count; bare verbs
// are themselves diagnosed by the annot analyzer.
func (p *Pass) Allowed(pos token.Pos, verb string) bool {
	position := p.Fset.Position(pos)
	// The annotation may sit on the flagged line itself or on a contiguous
	// block of annotation lines immediately above it — a site that trips two
	// analyzers stacks one //ir: line per verb.
	for _, a := range p.annots[annotKey{position.Filename, position.Line}] {
		if a.Verb == verb {
			return true
		}
	}
	for line := position.Line - 1; ; line-- {
		as := p.annots[annotKey{position.Filename, line}]
		if len(as) == 0 {
			return false
		}
		for _, a := range as {
			if a.Verb == verb {
				return true
			}
		}
	}
}

// Annotations returns every //ir: annotation in the package, parsed, in
// file order. Malformed markers (unknown verb, missing reason) are included
// so the annot analyzer can diagnose them.
func (p *Pass) Annotations() []Annotation {
	var out []Annotation
	for _, as := range p.annots {
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// parseAnnotations indexes every //ir: marker by (file, line). The reason
// is everything after the verb, trimmed.
func parseAnnotations(fset *token.FileSet, files []*ast.File) map[annotKey][]Annotation {
	idx := make(map[annotKey][]Annotation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ir:")
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				key := annotKey{pos.Filename, pos.Line}
				idx[key] = append(idx[key], Annotation{
					Verb:   strings.TrimSpace(verb),
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return idx
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the canonical import path. For a test variant
	// ("p [p.test]"), Path is the base path p and the files include the
	// package's _test.go files.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Analyzer errors (not findings) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		annots := parseAnnotations(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				annots:   annots,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// basePath strips the " [p.test]" suffix a test-variant import path
// carries, so analyzers configured with canonical paths match variants too.
func basePath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}
