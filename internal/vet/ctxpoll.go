package vet

// ctxpoll: cancellation must keep being polled. Two rules:
//
//  1. A func literal installed as a sched.Job Run closure must use its
//     context parameter — reference ctx somewhere in the body, whether by
//     polling ctx.Err()/ctx.Done() or by passing it on to the work it
//     invokes. A closure that names the parameter "_" (or never mentions
//     it) runs to completion no matter what Cancel or Drain asked for. A
//     closure whose cancellation genuinely flows through another channel
//     (core.Options.Interrupt wired at construction, say) carries
//     //ir:noctx <reason>.
//
//  2. In the configured runtime packages (internal/core), an unbounded
//     wait loop — `for`/`for cond` whose body blocks on a condition
//     variable, channel, select, sleep, or yield — must poll interruption
//     inside the loop: a pollInterrupt()/Interrupt call, or ctx.Err()/
//     ctx.Done(). Classic three-clause counted loops are exempt (bounded),
//     as are loops annotated //ir:nopoll <reason> — the reviewed list of
//     waits that are woken by the quiescence protocol itself and must NOT
//     unwind on interrupt mid-handshake.

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewCtxPoll returns the cancellation-polling analyzer. schedPkgSuffix
// identifies the scheduler package; corePkgs are the canonical paths whose
// wait loops must poll.
func NewCtxPoll(schedPkgSuffix string, corePkgs ...string) *Analyzer {
	coreSet := make(map[string]bool, len(corePkgs))
	for _, p := range corePkgs {
		coreSet[p] = true
	}
	a := &Analyzer{
		Name: "ctxpoll",
		Doc:  "sched job Run closures must use their context; core wait loops must poll interruption",
	}
	a.Run = func(pass *Pass) error {
		runCtxPollJobs(pass, schedPkgSuffix)
		if coreSet[basePath(pass.Pkg.Path())] {
			runCtxPollLoops(pass)
		}
		return nil
	}
	return a
}

// --- rule 1: sched.Job Run closures ---

func runCtxPollJobs(pass *Pass, schedPkgSuffix string) {
	declIndex := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					declIndex[obj] = fd
				}
			}
		}
	}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		var runExpr ast.Expr
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isSchedJobType(pass.Info.TypeOf(n), schedPkgSuffix) {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Run" {
						runExpr = kv.Value
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Run" || i >= len(n.Rhs) {
					continue
				}
				if isSchedJobType(pass.Info.TypeOf(sel.X), schedPkgSuffix) {
					runExpr = n.Rhs[i]
				}
			}
		}
		if runExpr == nil || pass.IsTestFile(runExpr.Pos()) {
			// Tests submit throwaway jobs that legitimately ignore ctx.
			return true
		}
		checkRunClosure(pass, runExpr, declIndex)
		return true
	})
}

func isSchedJobType(t types.Type, schedPkgSuffix string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Job" && strings.HasSuffix(named.Obj().Pkg().Path(), schedPkgSuffix)
}

// checkRunClosure verifies the closure references its ctx parameter.
func checkRunClosure(pass *Pass, e ast.Expr, declIndex map[*types.Func]*ast.FuncDecl) {
	var ftype *ast.FuncType
	var body *ast.BlockStmt
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		ftype, body = e.Type, e.Body
	case *ast.Ident:
		if f, ok := pass.Info.Uses[e].(*types.Func); ok {
			if fd := declIndex[f]; fd != nil {
				ftype, body = fd.Type, fd.Body
			}
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[e.Sel].(*types.Func); ok {
			if fd := declIndex[f]; fd != nil {
				ftype, body = fd.Type, fd.Body
			}
		}
	}
	if ftype == nil || body == nil || len(ftype.Params.List) == 0 {
		return
	}
	if pass.Allowed(e.Pos(), "noctx") {
		return
	}
	first := ftype.Params.List[0]
	if len(first.Names) == 0 || first.Names[0].Name == "_" {
		pass.Reportf(e.Pos(), "sched job Run closure discards its context — cancellation cannot reach the work (use ctx or annotate //ir:noctx <reason>)")
		return
	}
	param := pass.Info.Defs[first.Names[0]]
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == param {
			used = true
			return false
		}
		return !used
	})
	if !used {
		pass.Reportf(e.Pos(), "sched job Run closure never uses its context %s — cancellation cannot reach the work (poll or forward it, or annotate //ir:noctx <reason>)",
			first.Names[0].Name)
	}
}

// --- rule 2: core wait loops ---

func runCtxPollLoops(pass *Pass) {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if pass.IsTestFile(loop.Pos()) {
			return true
		}
		// Bounded counted loop: for init; cond; post { ... } with all three
		// clauses present.
		if loop.Init != nil && loop.Cond != nil && loop.Post != nil {
			return true
		}
		if !loopBlocks(pass, loop.Body) {
			return true
		}
		if loopPolls(pass, loop) {
			return true
		}
		if pass.Allowed(loop.For, "nopoll") {
			return true
		}
		pass.Reportf(loop.For, "unbounded wait loop never polls interruption — a canceled run would hang here (call pollInterrupt/ctx.Err in the loop, or annotate //ir:nopoll <reason>)")
		return true
	})
}

// loopBlocks reports whether the loop body waits: condition-variable waits,
// channel operations, selects, sleeps, or scheduler yields.
func loopBlocks(pass *Pass, body *ast.BlockStmt) bool {
	blocks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate evaluation context
		case *ast.SelectStmt:
			blocks = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				blocks = true
			}
		case *ast.SendStmt:
			blocks = true
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			switch {
			case funcPkgPath(f) == "time" && f.Name() == "Sleep":
				blocks = true
			case funcPkgPath(f) == "runtime" && f.Name() == "Gosched":
				blocks = true
			case f.Name() == "Wait" && recvNamed(f) != nil && recvNamed(f).Obj().Name() == "Cond":
				blocks = true
			}
		}
		return !blocks
	})
	return blocks
}

// loopPolls reports whether the loop consults interruption: a call to a
// function or method named pollInterrupt, a use of an Interrupt field or
// callback, ctx.Err()/ctx.Done(), or the runtime's phase-channel protocol —
// a loop that switches on phase() and selects on phaseCh returns on
// phShutdown, which is exactly how cancellation reaches parked threads
// (shutdown flips the phase and broadcasts the channel).
func loopPolls(pass *Pass, loop *ast.ForStmt) bool {
	polls := false
	check := func(n ast.Node) bool {
		if polls {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Interrupt" || n.Sel.Name == "phaseCh" {
				polls = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "pollInterrupt" {
					polls = true
				}
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "pollInterrupt", "Interrupt", "phase":
					polls = true
				case "Err", "Done":
					if t := pass.Info.TypeOf(fun.X); t != nil && isContextType(t) {
						polls = true
					}
				}
			}
		}
		return !polls
	}
	ast.Inspect(loop.Body, check)
	if !polls && loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	return polls
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}
