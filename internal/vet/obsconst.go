package vet

// obsconst: every metric the repo registers must be declared in the
// internal/obs catalog and pass the shared static lint rules at compile
// time. At each Registry.New{Counter,Gauge,GaugeFunc,Histogram}{,Vec} call
// site the analyzer requires
//
//   - the name argument to be a compile-time string constant,
//   - that constant to be one of the exported M* catalog constants the obs
//     package declares (internal/obs/metrics.go — the single source of
//     truth for the exposition surface),
//   - the name to pass obs.LintName for the instrument kind, and the label
//     argument of Vec constructors to be a constant passing obs.LintLabel.
//
// The rules come from internal/obs/rules.go — the same implementation the
// registry enforces at runtime and LintProm applies to expositions — so the
// static lint can never drift from the runtime lint. Test files are exempt
// (tests register scratch metrics on throwaway registries).

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/obs"
)

// registryCtors maps constructor name to (instrument kind, label-arg index;
// -1 when the constructor takes no label).
var registryCtors = map[string]struct {
	kind     string
	labelArg int
}{
	"NewCounter":      {obs.KindCounter, -1},
	"NewCounterVec":   {obs.KindCounter, 2},
	"NewGauge":        {obs.KindGauge, -1},
	"NewGaugeFunc":    {obs.KindGauge, -1},
	"NewGaugeVec":     {obs.KindGauge, 2},
	"NewHistogram":    {obs.KindHistogram, -1},
	"NewHistogramVec": {obs.KindHistogram, 2},
}

// NewObsConst returns the metric-catalog analyzer. obsPkgSuffix identifies
// the catalog package by import-path suffix (the real internal/obs in the
// repo, a stand-in under vettest fixtures).
func NewObsConst(obsPkgSuffix string) *Analyzer {
	a := &Analyzer{
		Name: "obsconst",
		Doc:  "metric registrations must use compile-time constant names from the internal/obs catalog, lint-clean",
	}
	a.Run = func(pass *Pass) error {
		runObsConst(pass, obsPkgSuffix)
		return nil
	}
	return a
}

func runObsConst(pass *Pass, obsPkgSuffix string) {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.IsTestFile(call.Pos()) {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || !strings.HasSuffix(funcPkgPath(f), obsPkgSuffix) {
			return true
		}
		recv := recvNamed(f)
		if recv == nil || recv.Obj().Name() != "Registry" {
			return true
		}
		ctor, ok := registryCtors[f.Name()]
		if !ok || len(call.Args) == 0 {
			return true
		}

		name, isConst := constStringArg(pass, call.Args[0])
		if !isConst {
			pass.Reportf(call.Args[0].Pos(), "metric name passed to %s must be a compile-time string constant from the internal/obs catalog", f.Name())
			return true
		}
		if !inCatalog(f.Pkg(), name) {
			pass.Reportf(call.Args[0].Pos(), "metric %q is not declared in the internal/obs catalog (add an M* constant in internal/obs/metrics.go and register through it)", name)
		}
		for _, prob := range obs.LintName(ctor.kind, name) {
			pass.Reportf(call.Args[0].Pos(), "metric name fails the shared obs lint rules: %s", prob)
		}

		if ctor.labelArg >= 0 && ctor.labelArg < len(call.Args) {
			label, isConst := constStringArg(pass, call.Args[ctor.labelArg])
			if !isConst {
				pass.Reportf(call.Args[ctor.labelArg].Pos(), "label name passed to %s must be a compile-time string constant", f.Name())
				return true
			}
			for _, prob := range obs.LintLabel(label) {
				pass.Reportf(call.Args[ctor.labelArg].Pos(), "label name fails the shared obs lint rules: %s", prob)
			}
		}
		return true
	})
}

// constStringArg resolves an argument to its compile-time string value.
func constStringArg(pass *Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// inCatalog reports whether value is the value of an exported M* string
// constant in the obs package — membership in the metric catalog.
func inCatalog(obsPkg *types.Package, value string) bool {
	if obsPkg == nil {
		return false
	}
	scope := obsPkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "M") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		if constant.StringVal(c.Val()) == value {
			return true
		}
	}
	return false
}
