package vet

// The meta-test: the repo itself must be ir-vet clean. Every suppression in
// the tree is a reviewed //ir: annotation, so a regression anywhere —
// including in the analyzers — fails this test, which is what CI runs.

import (
	"os/exec"
	"path/filepath"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestRepoIsVetClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(LoadConfig{Dir: root, Patterns: []string{"./..."}, Tests: true})
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	diags, err := Run(pkgs, Suite())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the finding or add a reviewed //ir: annotation (see docs/STATIC_ANALYSIS.md)")
	}
}

// TestVettoolProtocol builds cmd/ir-vet and drives it through the go
// command's -vettool interface — the unitchecker-style cfg protocol — over
// a couple of real packages.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "ir-vet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ir-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ir-vet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/record/...", "./internal/sched/...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
