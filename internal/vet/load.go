package vet

// The standalone loader: `go list -export` package discovery plus go/types
// checking through the standard library's gc export-data importer. This is
// what `ir-vet ./...` and the repo-clean meta-test run on. It deliberately
// avoids golang.org/x/tools (unavailable in the build environment): the go
// command produces export data for every dependency into its build cache,
// `-json` hands us the file graph, and types.Config with a lookup-based
// importer.ForCompiler does the rest. Test files are analyzed through the
// `-test` package variants (p [p.test], p_test [p.test]) exactly the way
// `go vet` sees them.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the directory to run `go list` from (any directory inside
	// the module).
	Dir string
	// Patterns are go package patterns; empty means ./...
	Patterns []string
	// Tests includes _test.go files via the go list -test variants.
	Tests bool
}

// listPkg is the slice of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	ForTest    string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load discovers, parses, and type-checks the packages matching the
// patterns, returning them ready for Run.
func Load(cfg LoadConfig) ([]*Package, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Export,GoFiles,ImportMap,ForTest,Standard,DepOnly,Incomplete,Error")
	args = append(args, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}

	// Pick what to analyze: local non-dep packages. When a -test variant
	// exists ("p [p.test]" with ForTest=p), it supersedes plain p — same
	// files plus the in-package tests. Generated test mains (".test") are
	// never analyzed.
	variants := map[string]bool{}
	for _, p := range pkgs {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			variants[p.ForTest] = true
		}
	}
	var targets []listPkg
	for _, p := range pkgs {
		switch {
		case p.Standard || p.DepOnly || len(p.GoFiles) == 0:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue
		case p.ForTest == "" && variants[p.ImportPath]:
			continue // superseded by its test variant
		}
		if p.Error != nil || p.Incomplete {
			msg := "package did not compile"
			if p.Error != nil {
				msg = p.Error.Err
			}
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, msg)
		}
		targets = append(targets, p)
	}

	var loaded []*Package
	for _, p := range targets {
		pkg, err := typecheck(p, exports)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, pkg)
	}
	return loaded, nil
}

// typecheck parses and type-checks one package from source, importing its
// dependencies from build-cache export data.
func typecheck(p listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range p.GoFiles {
		path := gf
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, gf)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (imported by %s)", path, p.ImportPath)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := basePath(p.ImportPath)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
