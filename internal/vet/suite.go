package vet

// Suite wires the analyzers with the repo's canonical configuration: which
// packages are replay-critical, where the scheduler and catalog live. This
// is the one place the invariant surface is declared; cmd/ir-vet and the
// repo-clean meta-test both run exactly this.

// DetScope is the replay-critical surface detpure holds to the determinism
// bar: the interpreter, memory/heap/record state, the trace codec, and the
// recording runtime itself (whose telemetry and stall-detection reads carry
// reviewed //ir:wallclock annotations). A nil file list means the whole
// package; internal/trace is scoped to the on-disk format files — the
// host-side fetch/cache/job layers (handle, segment, batch, lifecycle,
// store, analyze) run on service time and do telemetry freely.
var DetScope = map[string][]string{
	"repro/internal/interp": nil,
	"repro/internal/mem":    nil,
	"repro/internal/heap":   nil,
	"repro/internal/record": nil,
	"repro/internal/core":   nil,
	"repro/internal/trace": {
		"trace.go", "format.go", "writer.go", "reader.go",
		"index.go", "compress.go",
	},
}

// CorePollPackages are the packages whose unbounded wait loops must poll
// interruption (ctxpoll rule 2).
var CorePollPackages = []string{"repro/internal/core"}

// Suite returns the full analyzer suite under repo configuration.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDetPure(DetScope),
		NewAtomicMix(),
		NewGuardedBy(),
		NewObsConst("internal/obs"),
		NewCtxPoll("internal/sched", CorePollPackages...),
		NewRacySkip("internal/hostrace"),
		NewAnnot(),
	}
}
