// Package detect implements the two automatic error-detection tools of §4:
// a heap buffer-overflow detector based on trailing canaries (§4.1,
// StackGuard-style) and a use-after-free detector based on canary-filled
// quarantine lists (§4.2, AddressSanitizer-style quarantine).
//
// Both tools follow the same evidence-based protocol: corruption found at an
// epoch boundary is incontrovertible evidence of the error; the tool then
// triggers an in-situ re-execution with watchpoints armed on the corrupted
// addresses and reports the complete call stack of the writing instruction —
// the root cause — without human involvement. With only four hardware
// watchpoints available, more than four corrupted addresses are handled by
// additional replays.
package detect

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
)

// Config selects which detectors run.
type Config struct {
	// Overflow enables trailing-canary buffer-overflow detection.
	Overflow bool
	// UseAfterFree enables quarantine-based use-after-free detection.
	UseAfterFree bool
	// QuarantineBudget is the per-thread quarantine size in bytes before
	// freed objects are released (the user-defined setting of §4.2).
	QuarantineBudget int64
	// OnProgramEndOnly restricts scans to the final epoch (cheaper); by
	// default every epoch boundary is checked.
	OnProgramEndOnly bool
}

// RootCause couples a violation with the call stacks that wrote the
// corrupted addresses during re-execution.
type RootCause struct {
	Violation heap.Violation
	Hits      []interp.WatchHit
}

func (rc RootCause) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", rc.Violation)
	if len(rc.Hits) == 0 {
		sb.WriteString("  (no write observed during re-execution)\n")
		return sb.String()
	}
	h := rc.Hits[0]
	fmt.Fprintf(&sb, "  first corrupting write: %d bytes at %#x\n", h.Size, h.Addr)
	for _, e := range h.Stack {
		fmt.Fprintf(&sb, "    at %s+%d\n", e.Func, e.PC)
	}
	return sb.String()
}

// Detector plugs into the runtime's observer surface (it implements
// core.EpochObserver) and drives evidence scanning plus watchpoint
// re-execution. It shares the hook surface with the replay-time analyzers
// of internal/analysis rather than using bespoke plumbing.
type Detector struct {
	cfg Config

	mu         sync.Mutex
	violations []heap.Violation
	pending    []heap.Violation // awaiting a watchpoint replay
	armed      []heap.Violation // watched during the current replay
	causes     []RootCause
	scans      int64
}

// New builds a detector.
func New(cfg Config) *Detector {
	if cfg.QuarantineBudget == 0 {
		cfg.QuarantineBudget = 256 << 10
	}
	return &Detector{cfg: cfg}
}

// Attach enables the detection substrate on rt's allocator. Call after
// core.New and before Run.
func (d *Detector) Attach(rt *core.Runtime) error {
	alloc := rt.DetAllocator()
	if alloc == nil {
		return fmt.Errorf("detect: detectors require the deterministic allocator")
	}
	if d.cfg.Overflow {
		alloc.EnableCanaries()
	}
	if d.cfg.UseAfterFree {
		alloc.EnableQuarantine(d.cfg.QuarantineBudget)
		alloc.SetViolationHandler(func(v heap.Violation) {
			d.mu.Lock()
			d.violations = append(d.violations, v)
			d.pending = append(d.pending, v)
			d.mu.Unlock()
		})
	}
	return nil
}

// Options returns core options with the detector attached as an epoch
// observer; callers may further customize the result before core.New.
func (d *Detector) Options() core.Options {
	return core.Options{Observers: []core.Observer{d}}
}

var _ core.EpochObserver = (*Detector)(nil)

// OnEpochEnd scans for corrupted canaries at the epoch boundary and, on
// evidence, asks for an in-situ re-execution with watchpoints armed.
func (d *Detector) OnEpochEnd(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
	if d.cfg.OnProgramEndOnly && info.Reason != core.StopProgramEnd && info.Reason != core.StopFault {
		return core.Proceed
	}
	d.mu.Lock()
	d.scans++
	d.mu.Unlock()
	alloc := rt.DetAllocator()
	if alloc == nil {
		return core.Proceed
	}
	found := alloc.ScanCanaries()
	if len(found) == 0 {
		d.mu.Lock()
		havePending := len(d.pending) > 0
		d.mu.Unlock()
		if !havePending {
			return core.Proceed
		}
	}
	d.mu.Lock()
	d.violations = append(d.violations, found...)
	d.pending = append(d.pending, found...)
	d.mu.Unlock()
	d.armNextBatch(rt)
	return core.Replay
}

// armNextBatch installs watchpoints for up to mem.MaxWatchpoints corrupted
// addresses (§4.1: four watchpoints per re-execution; more bugs need more
// replays).
func (d *Detector) armNextBatch(rt *core.Runtime) {
	m := rt.Mem()
	m.ClearWatchpoints()
	rt.WatchHits() // drain stale hits
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed = d.armed[:0]
	slots := 0
	for len(d.pending) > 0 && slots < mem.MaxWatchpoints {
		v := d.pending[0]
		need := len(v.Addrs)
		if slots+need > mem.MaxWatchpoints && slots > 0 {
			break // next replay takes it
		}
		d.pending = d.pending[1:]
		for _, a := range v.Addrs {
			if slots >= mem.MaxWatchpoints {
				break
			}
			if err := m.ArmWatchpoint(a, 1); err == nil {
				slots++
			}
		}
		d.armed = append(d.armed, v)
	}
}

// OnReplayMatched collects the watchpoint hits from the finished
// re-execution, attributes them to violations, and requests further replays
// while corrupted addresses remain unwatched.
func (d *Detector) OnReplayMatched(rt *core.Runtime, attempts int) core.Decision {
	hits := rt.WatchHits()
	d.mu.Lock()
	for _, v := range d.armed {
		rc := RootCause{Violation: v}
		for _, h := range hits {
			for _, a := range v.Addrs {
				if h.Addr <= a && a < h.Addr+uint64(h.Size) {
					rc.Hits = append(rc.Hits, h)
					break
				}
			}
		}
		d.causes = append(d.causes, rc)
	}
	d.armed = d.armed[:0]
	more := len(d.pending) > 0
	d.mu.Unlock()
	rt.Mem().ClearWatchpoints()
	if more {
		d.armNextBatch(rt)
		return core.Replay
	}
	return core.Proceed
}

// Report summarizes detection results.
type Report struct {
	Violations []heap.Violation
	RootCauses []RootCause
	Scans      int64
}

// Report returns the accumulated findings.
func (d *Detector) Report() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Report{
		Violations: append([]heap.Violation(nil), d.violations...),
		RootCauses: append([]RootCause(nil), d.causes...),
		Scans:      d.scans,
	}
}

func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "detect: %d violation(s), %d root cause(s), %d scan(s)\n",
		len(r.Violations), len(r.RootCauses), r.Scans)
	for _, rc := range r.RootCauses {
		sb.WriteString(rc.String())
	}
	return sb.String()
}
