package detect

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tir"
)

// buildOverflowProgram allocates an object and writes `over` bytes past the
// requested size inside function "buggy_write".
func buildOverflowProgram(size, over int64) *tir.Module {
	mb := tir.NewModuleBuilder()

	buggy := mb.Func("buggy_write", 1)
	{
		p := buggy.Param(0)
		v, i, lim, cond, a := buggy.NewReg(), buggy.NewReg(), buggy.NewReg(), buggy.NewReg(), buggy.NewReg()
		buggy.ConstI(v, 0x41)
		buggy.ConstI(i, 0)
		buggy.ConstI(lim, size+over)
		loop, done := buggy.NewLabel(), buggy.NewLabel()
		buggy.Bind(loop)
		buggy.Bin(tir.LtS, cond, i, lim)
		buggy.Brz(cond, done)
		buggy.Bin(tir.Add, a, p, i)
		buggy.Store8(v, a, 0)
		buggy.AddI(i, i, 1)
		buggy.Jmp(loop)
		buggy.Bind(done)
		buggy.Ret(-1)
		buggy.Seal()
	}

	m := mb.Func("main", 0)
	{
		sz, p := m.NewReg(), m.NewReg()
		m.ConstI(sz, size)
		m.Intrin(p, tir.IntrinMalloc, sz)
		m.Call(-1, buggy.Index(), p)
		m.Ret(-1)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestOverflowDetectedWithRootCause(t *testing.T) {
	d := New(Config{Overflow: true})
	rt, err := core.New(buildOverflowProgram(20, 3), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	v := rep.Violations[0]
	if v.UseFree || v.Object.Size != 20 || len(v.Addrs) != 3 {
		t.Fatalf("violation = %+v", v)
	}
	if len(rep.RootCauses) != 1 {
		t.Fatalf("root causes = %v", rep.RootCauses)
	}
	rc := rep.RootCauses[0]
	if len(rc.Hits) == 0 {
		t.Fatal("watchpoint replay produced no hits")
	}
	if got := rc.Hits[0].Stack[0].Func; got != "buggy_write" {
		t.Fatalf("root cause function = %q, want buggy_write", got)
	}
	if !strings.Contains(rep.String(), "buggy_write") {
		t.Fatalf("report missing symbol:\n%s", rep)
	}
}

func TestCleanProgramReportsNothing(t *testing.T) {
	d := New(Config{Overflow: true, UseAfterFree: true})
	rt, err := core.New(buildOverflowProgram(20, 0), d.Options()) // over = 0: in-bounds
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	rep0, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) != 0 {
		t.Fatalf("false positives: %v", rep.Violations)
	}
	if rep0.Stats.Replays != 0 {
		t.Fatalf("clean program must not replay: %+v", rep0.Stats)
	}
}

// buildUAFProgram frees an object and then writes through the dangling
// pointer inside "dangling_write".
func buildUAFProgram() *tir.Module {
	mb := tir.NewModuleBuilder()

	dang := mb.Func("dangling_write", 1)
	{
		v := dang.NewReg()
		dang.ConstI(v, 0xBAD)
		dang.Store64(v, dang.Param(0), 8)
		dang.Ret(-1)
		dang.Seal()
	}

	m := mb.Func("main", 0)
	{
		sz, p := m.NewReg(), m.NewReg()
		m.ConstI(sz, 64)
		m.Intrin(p, tir.IntrinMalloc, sz)
		m.Intrin(-1, tir.IntrinFree, p)
		m.Call(-1, dang.Index(), p)
		m.Ret(-1)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestUseAfterFreeDetectedWithRootCause(t *testing.T) {
	d := New(Config{UseAfterFree: true})
	rt, err := core.New(buildUAFProgram(), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) != 1 || !rep.Violations[0].UseFree {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if len(rep.RootCauses) != 1 || len(rep.RootCauses[0].Hits) == 0 {
		t.Fatalf("root causes = %v", rep.RootCauses)
	}
	if got := rep.RootCauses[0].Hits[0].Stack[0].Func; got != "dangling_write" {
		t.Fatalf("root cause = %q, want dangling_write", got)
	}
}

// buildMultiOverflowProgram implants `bugs` separate one-byte overflows; the
// detector must find them all, batching watchpoints across replays when more
// than four addresses are corrupted.
func buildMultiOverflowProgram(bugs int) *tir.Module {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	sz, p, v := m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(v, 0x5A)
	for i := 0; i < bugs; i++ {
		m.ConstI(sz, 24)
		m.Intrin(p, tir.IntrinMalloc, sz)
		m.Store8(v, p, 24) // one byte past the end
	}
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestMoreThanFourOverflowsNeedMultipleReplays(t *testing.T) {
	d := New(Config{Overflow: true})
	rt, err := core.New(buildMultiOverflowProgram(6), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	rep0, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) != 6 {
		t.Fatalf("violations = %d, want 6", len(rep.Violations))
	}
	if len(rep.RootCauses) != 6 {
		t.Fatalf("root causes = %d, want 6", len(rep.RootCauses))
	}
	for i, rc := range rep.RootCauses {
		if len(rc.Hits) == 0 {
			t.Fatalf("cause %d has no hits", i)
		}
	}
	if rep0.Stats.MatchedReplays < 2 {
		t.Fatalf("6 corrupted addresses need >= 2 replays with 4 watchpoints, got %d",
			rep0.Stats.MatchedReplays)
	}
}

func TestOverflowInWorkerThread(t *testing.T) {
	mb := tir.NewModuleBuilder()
	w := mb.Func("worker_overflow", 1)
	{
		sz, p, v := w.NewReg(), w.NewReg(), w.NewReg()
		w.ConstI(sz, 40)
		w.Intrin(p, tir.IntrinMalloc, sz)
		w.ConstI(v, 0x99)
		w.Store8(v, p, 41)
		w.Ret(-1)
		w.Seal()
	}
	m := mb.Func("main", 0)
	{
		fnr, argr, tid := m.NewReg(), m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		m.ConstI(argr, 0)
		m.Intrin(tid, tir.IntrinThreadCreate, fnr, argr)
		m.Intrin(-1, tir.IntrinThreadJoin, tid)
		m.Ret(-1)
		m.Seal()
	}
	mb.SetEntry("main")
	d := New(Config{Overflow: true})
	rt, err := core.New(mb.MustBuild(), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.RootCauses) != 1 || len(rep.RootCauses[0].Hits) == 0 {
		t.Fatalf("report = %s", rep)
	}
	if got := rep.RootCauses[0].Hits[0].Stack[0].Func; got != "worker_overflow" {
		t.Fatalf("root cause = %q", got)
	}
}
