// Package clap re-implements the recording side of CLAP [Huang, Zhang &
// Dolby, PLDI 2013] as the evaluation's software-only comparator (§5.3).
//
// CLAP records thread-local execution paths at runtime and reconstructs
// shared-memory dependencies offline. Its recording is Ball–Larus path
// profiling: every function gets a path-sum register, every acyclic CFG edge
// an increment, and every back edge / function exit emits the accumulated
// path identifier into a per-thread log. The paper's authors re-implemented
// this over LLVM path profiling; this package performs the equivalent
// source-to-source transformation over TIR.
//
// Only recording is reproduced — offline constraint solving is out of scope,
// exactly as in the paper's overhead comparison. The cost profile matches
// CLAP's: branch- and loop-dense CPU code pays heavily, IO-bound code pays
// almost nothing.
package clap

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/tir"
)

// ProbeBase offsets CLAP probe IDs; probe id = ProbeBase + function index.
const ProbeBase int64 = 1 << 20

// Instrument returns a path-profiled copy of mod. Functions whose CFG cannot
// be numbered (irreducible after back-edge removal) are left uninstrumented,
// mirroring the paper's experience of LLVM path-profiling failures on some
// applications.
func Instrument(mod *tir.Module) (*tir.Module, error) {
	out := &tir.Module{
		Funcs:   make([]*tir.Function, len(mod.Funcs)),
		Globals: append([]tir.Global(nil), mod.Globals...),
		Entry:   mod.Entry,
	}
	for i, f := range mod.Funcs {
		nf, err := instrumentFunc(f, ProbeBase+int64(i))
		if err != nil {
			// Leave the function untouched (copy).
			cp := *f
			cp.Code = append([]tir.Instr(nil), f.Code...)
			out.Funcs[i] = &cp
			continue
		}
		out.Funcs[i] = nf
	}
	if err := tir.Validate(out); err != nil {
		return nil, fmt.Errorf("clap: instrumented module invalid: %w", err)
	}
	return out, nil
}

// instrumentFunc rewrites f with Ball–Larus edge increments. The rewrite
// lays out every basic block, materializes edge instrumentation either
// inline (fallthrough edges) or in appended stub blocks (branch-taken
// edges), and patches all control transfers.
func instrumentFunc(f *tir.Function, probeID int64) (*tir.Function, error) {
	g := cfg.Build(f)
	pn, err := cfg.NumberPaths(g)
	if err != nil {
		return nil, err
	}
	nf := &tir.Function{
		Name:      f.Name,
		NumParams: f.NumParams,
		NumRegs:   f.NumRegs + 1,
		FrameSize: f.FrameSize,
	}
	ps := int32(f.NumRegs) // the path-sum register

	type patchRef struct {
		pc    int // instruction in nf.Code whose Imm needs the block start
		block int // target block
	}
	var patches []patchRef
	blockStart := make([]int, len(g.Blocks))
	for i := range blockStart {
		blockStart[i] = -1
	}
	emit := func(in tir.Instr) int {
		nf.Code = append(nf.Code, in)
		return len(nf.Code) - 1
	}
	// emitEdge materializes the instrumentation for edge u→v followed by a
	// jump to v (patched later).
	emitEdge := func(u, v int) {
		if inc := pn.Inc[[2]int{u, v}]; inc != 0 {
			emit(tir.Instr{Op: tir.AddI, A: ps, B: ps, Imm: inc})
		}
		if g.IsBackEdge(u, v) {
			emit(tir.Instr{Op: tir.Probe, A: ps, Imm: probeID})
			emit(tir.Instr{Op: tir.ConstI, A: ps, Imm: 0})
		}
		pc := emit(tir.Instr{Op: tir.Jmp})
		patches = append(patches, patchRef{pc: pc, block: v})
	}

	type stub struct{ u, v int }
	var stubs []stub

	for _, b := range g.Blocks {
		blockStart[b.ID] = len(nf.Code)
		if b.ID == 0 {
			emit(tir.Instr{Op: tir.ConstI, A: ps, Imm: 0})
		}
		end := b.End
		last := f.Code[end-1]
		bodyEnd := end
		switch last.Op {
		case tir.Jmp, tir.Br, tir.Brz, tir.Ret:
			bodyEnd = end - 1
		}
		for pc := b.Start; pc < bodyEnd; pc++ {
			emit(f.Code[pc])
		}
		switch last.Op {
		case tir.Ret:
			emit(tir.Instr{Op: tir.Probe, A: ps, Imm: probeID})
			emit(last)
		case tir.Jmp:
			emitEdge(b.ID, g.BlockOf(int(last.Imm)))
		case tir.Br, tir.Brz:
			taken := g.BlockOf(int(last.Imm))
			fall := g.BlockOf(end)
			// Branch to a stub carrying the taken edge's instrumentation.
			pc := emit(tir.Instr{Op: last.Op, A: last.A})
			stubs = append(stubs, stub{b.ID, taken})
			stubIdx := len(stubs) - 1
			// Remember to patch with the stub's start; encode via negative
			// block id offset by stub index later. Simplest: record patch
			// into a parallel list after stubs are laid out.
			patches = append(patches, patchRef{pc: pc, block: -(stubIdx + 1)})
			emitEdge(b.ID, fall)
		default:
			if end == len(f.Code) {
				// Terminal intrinsic tail (thread_exit/abort): no edge.
				break
			}
			// Implicit fallthrough.
			emitEdge(b.ID, g.BlockOf(end))
		}
	}
	// Lay out the taken-edge stubs.
	stubStart := make([]int, len(stubs))
	for i, s := range stubs {
		stubStart[i] = len(nf.Code)
		emitEdge(s.u, s.v)
	}
	// Patch control transfers.
	for _, p := range patches {
		if p.block < 0 {
			nf.Code[p.pc].Imm = int64(stubStart[-p.block-1])
		} else {
			nf.Code[p.pc].Imm = int64(blockStart[p.block])
		}
	}
	return nf, nil
}

// Recorder accumulates per-thread path logs; it is the runtime half of
// CLAP recording. Logs are preallocated per thread to keep the hot path
// allocation-free, like the per-thread lists of the host system.
type Recorder struct {
	logs  [][]uint64
	count atomic.Int64
}

// NewRecorder sizes the recorder for maxThreads threads.
func NewRecorder(maxThreads int) *Recorder {
	r := &Recorder{logs: make([][]uint64, maxThreads)}
	for i := range r.logs {
		r.logs[i] = make([]uint64, 0, 1<<14)
	}
	return r
}

// OnProbe is wired into core.Options.OnProbe.
func (r *Recorder) OnProbe(tid int32, id int64, v uint64) {
	if id < ProbeBase {
		return
	}
	if int(tid) < len(r.logs) {
		// Encode function and path in one word, as CLAP's compact logs do.
		r.logs[tid] = append(r.logs[tid], uint64(id-ProbeBase)<<48|v&(1<<48-1))
		if len(r.logs[tid]) == cap(r.logs[tid]) {
			// Wrap: CLAP flushes to disk; the overhead model keeps the
			// amortized append cost without unbounded memory.
			r.logs[tid] = r.logs[tid][:0]
		}
	}
	r.count.Add(1)
}

// Events returns the total number of recorded path events.
func (r *Recorder) Events() int64 { return r.count.Load() }

// Log returns thread tid's current log window.
func (r *Recorder) Log(tid int32) []uint64 {
	if int(tid) >= len(r.logs) {
		return nil
	}
	return r.logs[tid]
}
