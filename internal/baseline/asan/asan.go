// Package asan is the AddressSanitizer-like comparator of Figure 5: a
// compile-time instrumentation pass that checks every heap write against
// shadow memory, with redzones around allocations and a quarantine for freed
// objects [Serebryany et al., USENIX ATC 2012].
//
// Matching the paper's fair-comparison setup (§5.4.2), only *writes* are
// instrumented (no read checks, no leak detection), and writes performed by
// uninstrumented code — the memset/memcpy intrinsics, standing in for
// external libraries — are not checked, which is exactly the blind spot the
// paper points out for AddressSanitizer.
package asan

import (
	"fmt"
	"sync"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/tir"
)

// Probe IDs for instrumented stores.
const (
	ProbeStore8  int64 = 1 << 19
	ProbeStore64 int64 = 1<<19 + 1
)

// Instrument returns a copy of mod with a shadow check probe before every
// Store8/Store64.
func Instrument(mod *tir.Module) (*tir.Module, error) {
	out := &tir.Module{
		Funcs:   make([]*tir.Function, len(mod.Funcs)),
		Globals: append([]tir.Global(nil), mod.Globals...),
		Entry:   mod.Entry,
	}
	for i, f := range mod.Funcs {
		nf := &tir.Function{
			Name:      f.Name,
			NumParams: f.NumParams,
			NumRegs:   f.NumRegs + 1,
			FrameSize: f.FrameSize,
		}
		scratch := int32(f.NumRegs)
		// Instrumented code shifts every pc, so build a remap table while
		// emitting, then patch branch targets.
		remap := make([]int64, len(f.Code))
		for pc, in := range f.Code {
			remap[pc] = int64(len(nf.Code))
			if in.Op == tir.Store8 || in.Op == tir.Store64 {
				// scratch = base + offset; the probe checks the effective
				// address against shadow memory before the store executes.
				id := ProbeStore8
				if in.Op == tir.Store64 {
					id = ProbeStore64
				}
				nf.Code = append(nf.Code,
					tir.Instr{Op: tir.AddI, A: scratch, B: in.B, Imm: in.Imm},
					tir.Instr{Op: tir.Probe, A: scratch, Imm: id})
			}
			nf.Code = append(nf.Code, in)
		}
		for pc := range nf.Code {
			switch nf.Code[pc].Op {
			case tir.Jmp, tir.Br, tir.Brz:
				nf.Code[pc].Imm = remap[nf.Code[pc].Imm]
			}
		}
		out.Funcs[i] = nf
	}
	if err := tir.Validate(out); err != nil {
		return nil, fmt.Errorf("asan: instrumented module invalid: %w", err)
	}
	return out, nil
}

// Error is one detected bad write.
type Error struct {
	Addr  uint64
	Size  int
	Stack []interp.StackEntry
}

func (e Error) String() string {
	return fmt.Sprintf("asan: heap-buffer write violation at %#x (size %d)", e.Addr, e.Size)
}

// Shadow tracks addressability of the heap arena at byte granularity using
// a bitset (1 = poisoned).
type Shadow struct {
	base uint64
	bits []uint64

	mu     sync.Mutex
	errors []Error
}

// NewShadow covers the heap arena of m; everything starts poisoned (heap
// memory is unaddressable until allocated).
func NewShadow(m *mem.Memory) *Shadow {
	base, size := m.HeapRange()
	s := &Shadow{base: base, bits: make([]uint64, (size+63)/64)}
	for i := range s.bits {
		s.bits[i] = ^uint64(0)
	}
	return s
}

func (s *Shadow) set(addr uint64, n int64, poisoned bool) {
	off := int64(addr - s.base)
	for i := int64(0); i < n; i++ {
		idx := off + i
		if idx < 0 || idx >= int64(len(s.bits))*64 {
			continue
		}
		if poisoned {
			s.bits[idx/64] |= 1 << (idx % 64)
		} else {
			s.bits[idx/64] &^= 1 << (idx % 64)
		}
	}
}

// Poison marks [addr, addr+n) unaddressable.
func (s *Shadow) Poison(addr uint64, n int64) { s.set(addr, n, true) }

// Unpoison marks [addr, addr+n) addressable.
func (s *Shadow) Unpoison(addr uint64, n int64) { s.set(addr, n, false) }

// Poisoned reports whether any byte of [addr, addr+n) is unaddressable.
func (s *Shadow) Poisoned(addr uint64, n int) bool {
	off := int64(addr - s.base)
	if off < 0 {
		return false // not heap: globals/stack are not shadowed (writes-only heap checking)
	}
	for i := int64(0); i < int64(n); i++ {
		idx := off + i
		if idx >= int64(len(s.bits))*64 {
			return false
		}
		if s.bits[idx/64]&(1<<(idx%64)) != 0 {
			return true
		}
	}
	return false
}

// OnProbe is wired into core.Options.OnProbe: it checks the effective
// address of the upcoming store.
func (s *Shadow) OnProbe(tid int32, id int64, addr uint64) {
	var n int
	switch id {
	case ProbeStore8:
		n = 1
	case ProbeStore64:
		n = 8
	default:
		return
	}
	if s.Poisoned(addr, n) {
		s.mu.Lock()
		if len(s.errors) < 128 {
			s.errors = append(s.errors, Error{Addr: addr, Size: n})
		}
		s.mu.Unlock()
	}
}

// Errors returns the detected violations.
func (s *Shadow) Errors() []Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Error(nil), s.errors...)
}

// Allocator wraps the deterministic heap, maintaining shadow state: payloads
// become addressable on malloc, redzones and freed memory stay poisoned.
type Allocator struct {
	Inner  *heap.Deterministic
	Shadow *Shadow
}

// NewAllocator builds the wrapping allocator with quarantine enabled (ASan
// delays reuse of freed memory, like §4.2's quarantine).
func NewAllocator(inner *heap.Deterministic, sh *Shadow, quarantine int64) *Allocator {
	inner.EnableQuarantine(quarantine)
	return &Allocator{Inner: inner, Shadow: sh}
}

// Malloc implements heap.Allocator.
func (a *Allocator) Malloc(tid int32, size int64) uint64 {
	addr := a.Inner.Malloc(tid, size)
	if addr != 0 {
		a.Shadow.Unpoison(addr, size)
	}
	return addr
}

// Calloc implements heap.Allocator.
func (a *Allocator) Calloc(tid int32, n, size int64) uint64 {
	addr := a.Inner.Calloc(tid, n, size)
	if addr != 0 {
		a.Shadow.Unpoison(addr, n*size)
	}
	return addr
}

// Free implements heap.Allocator: the payload is poisoned again, so
// use-after-free writes trip the shadow check.
func (a *Allocator) Free(tid int32, addr uint64) error {
	if obj, ok := a.Inner.Lookup(addr); ok {
		a.Shadow.Poison(obj.Addr, obj.Size)
	}
	return a.Inner.Free(tid, addr)
}

// Lookup implements heap.Allocator.
func (a *Allocator) Lookup(addr uint64) (heap.Object, bool) { return a.Inner.Lookup(addr) }

// Snapshot implements heap.Allocator (shadow state is not checkpointed:
// ASan has no epochs).
func (a *Allocator) Snapshot() heap.AllocSnapshot { return a.Inner.Snapshot() }

// Restore implements heap.Allocator.
func (a *Allocator) Restore(s heap.AllocSnapshot) { a.Inner.Restore(s) }
