// Package rr models Mozilla RR [O'Callahan et al., USENIX ATC 2017] for the
// evaluation's comparisons: record-and-replay that multiplexes every thread
// of the program onto a single core with time-slice scheduling.
//
// RR's defining trade-offs, both reproduced here:
//
//   - identical replay is easy, because serializing all threads removes
//     concurrency entirely (Table 1's RR row is 0%): re-running under the
//     recorded schedule is exactly the original execution;
//   - recording is slow on CPU-parallel programs, because only one thread
//     makes progress at a time (Table 3's 5×–52× RR column at 16 hardware
//     threads), while IO-bound programs are barely affected.
//
// The implementation is a deterministic green-thread scheduler over the
// same substrates (interp/mem/vsys/heap): threads run one at a time and
// yield at every synchronization point, system call, and instruction-budget
// poll; the scheduler records each dispatch decision.
package rr

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/tir"
	"repro/internal/vsys"
)

type threadState int32

const (
	stRunnable threadState = iota
	stMutex                // waiting for a mutex
	stCond                 // waiting on a condition variable
	stBarrier              // waiting at a barrier
	stJoin                 // waiting for a thread exit
	stExited
)

type thread struct {
	id    int32
	cpu   *interp.CPU
	state threadState

	resume chan struct{}
	parked chan struct{}

	waitAddr uint64 // mutex/cond/barrier address when blocked
	waitTID  int32  // join target
	exitVal  uint64
	joined   bool

	// pendingErr carries a scheduler-side verdict back into the thread.
	err error
}

type mutexState struct {
	locked bool
	holder int32
}

type condState struct {
	waiters []int32
}

type barrierState struct {
	parties int64
	arrived []int32
}

// Runtime executes one TIR program under RR-style single-core scheduling.
type Runtime struct {
	mod   *tir.Module
	mem   *mem.Memory
	os    *vsys.OS
	alloc *heap.Deterministic

	threads  []*thread
	mutexes  map[uint64]*mutexState
	conds    map[uint64]*condState
	barriers map[uint64]*barrierState

	// schedule is the recorded dispatch log (thread id per slice); replay
	// follows it, though with deterministic round-robin it is also the
	// schedule a fresh run would produce.
	schedule []int32
	replayIn []int32

	next    int // round-robin cursor
	exitVal uint64
	failure error
}

// New builds an RR runtime for mod.
func New(mod *tir.Module, seed int64) (*Runtime, error) {
	if err := tir.Validate(mod); err != nil {
		return nil, err
	}
	cfg := mem.DefaultConfig()
	m := mem.New(cfg)
	rt := &Runtime{
		mod:      mod,
		mem:      m,
		os:       vsys.New(4321, seed),
		alloc:    heap.NewDeterministic(m),
		mutexes:  make(map[uint64]*mutexState),
		conds:    make(map[uint64]*condState),
		barriers: make(map[uint64]*barrierState),
		schedule: make([]int32, 0, 1<<16),
	}
	rt.os.RaiseFDLimit(4096)
	for i, g := range mod.Globals {
		if len(g.Init) > 0 {
			rt.mem.WriteBytes(interp.GlobalAddr(mod, i), g.Init)
		}
	}
	return rt, nil
}

// OS exposes the virtual OS for workload setup.
func (rt *Runtime) OS() *vsys.OS { return rt.os }

// Mem exposes the address space (heap-image diffing for Table 1).
func (rt *Runtime) Mem() *mem.Memory { return rt.mem }

// Schedule returns the recorded dispatch log.
func (rt *Runtime) Schedule() []int32 { return rt.schedule }

// SetReplay makes the next Run follow a previously recorded schedule.
func (rt *Runtime) SetReplay(sched []int32) { rt.replayIn = sched }

var errDone = errors.New("rr: thread finished")

func (rt *Runtime) newThread(fn int, arg uint64, hasArg bool) (*thread, error) {
	id := int32(len(rt.threads))
	if int(id) >= rt.mem.Config().MaxThreads {
		return nil, fmt.Errorf("rr: thread limit reached")
	}
	t := &thread{
		id:     id,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	base, size := rt.mem.StackRange(int(id))
	t.cpu = interp.New(rt.mod, rt.mem, &hooks{rt: rt, t: t}, base, size)
	rt.alloc.AssignHeap(id)
	rt.threads = append(rt.threads, t)
	var args []uint64
	if hasArg {
		args = []uint64{arg}
	}
	t.cpu.Start(fn, args)
	go func() {
		<-t.resume
		err := t.cpu.Run()
		switch {
		case err == nil:
			t.exitVal = t.cpu.Result()
		case errors.Is(err, errDone):
			// thread_exit: exitVal already set
		default:
			if rt.failure == nil {
				rt.failure = err
			}
		}
		rt.exitThread(t)
		t.parked <- struct{}{}
	}()
	return t, nil
}

func (rt *Runtime) exitThread(t *thread) {
	t.state = stExited
	for _, w := range rt.threads {
		if w.state == stJoin && w.waitTID == t.id {
			w.state = stRunnable
		}
	}
}

// Run executes the program to completion and returns main's exit value.
func (rt *Runtime) Run() (uint64, error) {
	main, err := rt.newThread(rt.mod.Entry, 0, false)
	if err != nil {
		return 0, err
	}
	_ = main
	step := 0
	for {
		t := rt.pick(step)
		step++
		if t == nil {
			break
		}
		rt.schedule = append(rt.schedule, t.id)
		t.resume <- struct{}{}
		<-t.parked
		if rt.failure != nil {
			return 0, rt.failure
		}
		if rt.threads[0].state == stExited {
			break
		}
	}
	if rt.failure != nil {
		return 0, rt.failure
	}
	rt.exitVal = rt.threads[0].exitVal
	return rt.exitVal, nil
}

// pick selects the next runnable thread. Under replay it follows the
// recorded schedule; otherwise deterministic round-robin (RR's time slices).
func (rt *Runtime) pick(step int) *thread {
	if rt.replayIn != nil {
		if step >= len(rt.replayIn) {
			return nil
		}
		t := rt.threads[rt.replayIn[step]]
		if t.state != stRunnable {
			// Deterministic execution means this cannot happen unless the
			// schedule is foreign; surface it as a failure.
			rt.failure = fmt.Errorf("rr: replay schedule dispatches blocked thread %d", t.id)
			return nil
		}
		return t
	}
	n := len(rt.threads)
	for i := 0; i < n; i++ {
		t := rt.threads[(rt.next+i)%n]
		if t.state == stRunnable {
			rt.next = (rt.next + i + 1) % n
			return t
		}
	}
	return nil // deadlock or all exited
}

// hooks adapts scheduler semantics to the interpreter. Every callback runs
// on the thread's goroutine while it holds the (single) execution token;
// yielding hands the token back to the scheduler loop.
type hooks struct {
	rt *Runtime
	t  *thread
}

// yield returns control to the scheduler until this thread is dispatched
// again.
func (h *hooks) yield() {
	h.t.parked <- struct{}{}
	<-h.t.resume
}

// block parks the thread in a non-runnable state and yields until the
// scheduler makes it runnable and dispatches it again.
func (h *hooks) block(s threadState, addr uint64) {
	h.t.state = s
	h.t.waitAddr = addr
	h.yield()
}

func (h *hooks) Poll() error {
	// Time-slice boundary: hand the core to the next thread.
	h.yield()
	return nil
}

func (h *hooks) Probe(id int64, v uint64) {}

func (h *hooks) Syscall(num int64, args []uint64) (uint64, error) {
	h.yield() // syscalls are scheduling points
	rt := h.rt
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch num {
	case vsys.SysGetpid:
		return uint64(rt.os.Pid()), nil
	case vsys.SysGettimeofday:
		return uint64(rt.os.Gettimeofday()), nil
	case vsys.SysRand:
		return rt.os.Rand(), nil
	case vsys.SysOpen:
		b, err := rt.mem.ReadBytes(arg(0), int(arg(1)))
		if err != nil {
			return 0, err
		}
		fd, err := rt.os.Open(string(b))
		if err != nil {
			return 0, err
		}
		return uint64(fd), nil
	case vsys.SysClose:
		return 0, rt.os.Close(int64(arg(0)))
	case vsys.SysRead:
		b, err := rt.os.Read(int64(arg(0)), int(arg(2)))
		if err != nil {
			return 0, err
		}
		if len(b) > 0 {
			if err := rt.mem.WriteBytes(arg(1), b); err != nil {
				return 0, err
			}
		}
		return uint64(len(b)), nil
	case vsys.SysWrite:
		b, err := rt.mem.ReadBytes(arg(1), int(arg(2)))
		if err != nil {
			return 0, err
		}
		n, err := rt.os.Write(int64(arg(0)), b)
		if err != nil {
			return 0, err
		}
		return uint64(n), nil
	case vsys.SysLseek:
		p, err := rt.os.Lseek(int64(arg(0)), int64(arg(1)), int64(arg(2)))
		if err != nil {
			return 0, err
		}
		return uint64(p), nil
	case vsys.SysSocket:
		fd, err := rt.os.Socket()
		if err != nil {
			return 0, err
		}
		return uint64(fd), nil
	case vsys.SysMmap:
		a := rt.alloc.Malloc(h.t.id, int64(arg(0)))
		if a == 0 {
			return 0, errors.New("rr: mmap exhausted")
		}
		return a, nil
	case vsys.SysMunmap:
		return 0, rt.alloc.Free(h.t.id, arg(0))
	case vsys.SysFork:
		return uint64(rt.os.Fork()), nil
	case vsys.SysFcntl:
		if int64(arg(1)) == vsys.FGetOwn {
			return uint64(rt.os.Pid()), nil
		}
		fd, err := rt.os.DupFD(int64(arg(0)))
		if err != nil {
			return 0, err
		}
		return uint64(fd), nil
	}
	return 0, fmt.Errorf("rr: unknown syscall %d", num)
}

func (h *hooks) Intrinsic(id int64, args []uint64) (uint64, error) {
	rt := h.rt
	t := h.t
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch id {
	case tir.IntrinMutexLock:
		for {
			m := rt.mutex(arg(0))
			if !m.locked {
				m.locked, m.holder = true, t.id
				return 0, nil
			}
			h.block(stMutex, arg(0))
		}
	case tir.IntrinMutexUnlock:
		m := rt.mutex(arg(0))
		if !m.locked || m.holder != t.id {
			return 0, fmt.Errorf("rr: unlock of unowned mutex %#x", arg(0))
		}
		m.locked, m.holder = false, -1
		for _, w := range rt.threads {
			if w.state == stMutex && w.waitAddr == arg(0) {
				w.state = stRunnable
			}
		}
		h.yield()
		return 0, nil
	case tir.IntrinMutexTryLock:
		m := rt.mutex(arg(0))
		if !m.locked {
			m.locked, m.holder = true, t.id
			return 1, nil
		}
		return 0, nil
	case tir.IntrinCondWait:
		c := rt.cond(arg(0))
		mu := rt.mutex(arg(1))
		if !mu.locked || mu.holder != t.id {
			return 0, fmt.Errorf("rr: cond_wait without mutex held")
		}
		mu.locked, mu.holder = false, -1
		for _, w := range rt.threads {
			if w.state == stMutex && w.waitAddr == arg(1) {
				w.state = stRunnable
			}
		}
		c.waiters = append(c.waiters, t.id)
		h.block(stCond, arg(0))
		// Reacquire the mutex.
		for {
			if !mu.locked {
				mu.locked, mu.holder = true, t.id
				return 0, nil
			}
			h.block(stMutex, arg(1))
		}
	case tir.IntrinCondSignal, tir.IntrinCondBroadcast:
		c := rt.cond(arg(0))
		nwake := 1
		if id == tir.IntrinCondBroadcast {
			nwake = len(c.waiters)
		}
		for i := 0; i < nwake && len(c.waiters) > 0; i++ {
			w := rt.threads[c.waiters[0]]
			c.waiters = c.waiters[1:]
			w.state = stRunnable
		}
		return 0, nil
	case tir.IntrinBarrierInit:
		rt.barriers[arg(0)] = &barrierState{parties: int64(arg(1))}
		return 0, nil
	case tir.IntrinBarrierWait:
		b := rt.barriers[arg(0)]
		if b == nil {
			return 0, fmt.Errorf("rr: wait on uninitialized barrier")
		}
		if int64(len(b.arrived))+1 == b.parties {
			for _, id := range b.arrived {
				rt.threads[id].state = stRunnable
			}
			b.arrived = b.arrived[:0]
			return 1, nil
		}
		b.arrived = append(b.arrived, t.id)
		h.block(stBarrier, arg(0))
		return 0, nil
	case tir.IntrinThreadCreate:
		child, err := rt.newThread(int(arg(0)), arg(1), true)
		if err != nil {
			return 0, err
		}
		return uint64(child.id), nil
	case tir.IntrinThreadJoin:
		cid := int32(arg(0))
		if int(cid) >= len(rt.threads) {
			return 0, fmt.Errorf("rr: join of invalid thread %d", cid)
		}
		child := rt.threads[cid]
		for child.state != stExited {
			t.waitTID = cid
			h.block(stJoin, 0)
		}
		child.joined = true
		return child.exitVal, nil
	case tir.IntrinThreadExit:
		t.exitVal = arg(0)
		return 0, errDone
	case tir.IntrinMalloc:
		a := rt.alloc.Malloc(t.id, int64(arg(0)))
		if a == 0 {
			return 0, errors.New("rr: out of memory")
		}
		return a, nil
	case tir.IntrinCalloc:
		a := rt.alloc.Calloc(t.id, int64(arg(0)), int64(arg(1)))
		if a == 0 {
			return 0, errors.New("rr: out of memory")
		}
		return a, nil
	case tir.IntrinFree:
		return 0, rt.alloc.Free(t.id, arg(0))
	case tir.IntrinSelfTID:
		return uint64(t.id), nil
	case tir.IntrinYield, tir.IntrinUsleep:
		// Single-core: a sleep is just a slice boundary (virtual time).
		h.yield()
		return 0, nil
	case tir.IntrinPrint:
		return 0, nil
	case tir.IntrinAbort:
		return 0, errors.New("rr: abort() called")
	}
	return 0, fmt.Errorf("rr: unknown intrinsic %d", id)
}

func (rt *Runtime) mutex(addr uint64) *mutexState {
	m, ok := rt.mutexes[addr]
	if !ok {
		m = &mutexState{holder: -1}
		rt.mutexes[addr] = m
	}
	return m
}

func (rt *Runtime) cond(addr uint64) *condState {
	c, ok := rt.conds[addr]
	if !ok {
		c = &condState{}
		rt.conds[addr] = c
	}
	return c
}
