// Package baseline_test exercises the three evaluation comparators together
// against the host runtime on shared programs.
package baseline_test

import (
	"testing"

	"repro/internal/baseline/asan"
	"repro/internal/baseline/clap"
	"repro/internal/baseline/rr"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/tir"
)

// buildLoopSum builds a branchy compute program: sum of i for odd i in
// [0, n), with a function call per iteration.
func buildLoopSum(n int64) *tir.Module {
	mb := tir.NewModuleBuilder()
	odd := mb.Func("is_odd", 1)
	{
		r, one := odd.NewReg(), odd.NewReg()
		odd.ConstI(one, 1)
		odd.Bin(tir.And, r, odd.Param(0), one)
		odd.Ret(r)
		odd.Seal()
	}
	m := mb.Func("main", 0)
	i, lim, cond, sum, o := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(i, 0)
	m.ConstI(lim, n)
	m.ConstI(sum, 0)
	loop, done, skip := m.NewLabel(), m.NewLabel(), m.NewLabel()
	m.Bind(loop)
	m.Bin(tir.LtS, cond, i, lim)
	m.Brz(cond, done)
	m.Call(o, odd.Index(), i)
	m.Brz(o, skip)
	m.Bin(tir.Add, sum, sum, i)
	m.Bind(skip)
	m.AddI(i, i, 1)
	m.Jmp(loop)
	m.Bind(done)
	m.Ret(sum)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func oddSum(n int64) uint64 {
	var s uint64
	for i := int64(0); i < n; i++ {
		if i%2 == 1 {
			s += uint64(i)
		}
	}
	return s
}

func TestClapInstrumentationPreservesSemantics(t *testing.T) {
	mod := buildLoopSum(500)
	inst, err := clap.Instrument(mod)
	if err != nil {
		t.Fatal(err)
	}
	rec := clap.NewRecorder(8)
	rt, err := core.New(inst, core.Options{DisableRecording: true, OnProbe: rec.OnProbe})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != oddSum(500) {
		t.Fatalf("instrumented result = %d, want %d", rep.Exit, oddSum(500))
	}
	// 500 loop back edges plus function exits must have produced events.
	if rec.Events() < 500 {
		t.Fatalf("path events = %d, want >= 500", rec.Events())
	}
}

func TestClapInstrumentedThreadsStillCorrect(t *testing.T) {
	// A threaded program survives instrumentation (thread entry functions
	// are instrumented too).
	mod := buildThreadedSum(4, 100)
	inst, err := clap.Instrument(mod)
	if err != nil {
		t.Fatal(err)
	}
	rec := clap.NewRecorder(8)
	rt, err := core.New(inst, core.Options{DisableRecording: true, OnProbe: rec.OnProbe})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 400 {
		t.Fatalf("result = %d, want 400", rep.Exit)
	}
	if rec.Events() == 0 {
		t.Fatal("no path events from worker threads")
	}
}

func buildThreadedSum(nThreads, iters int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gM := mb.Global("m", 8)
	gC := mb.Global("c", 8)
	w := mb.Func("worker", 1)
	{
		i, lim, cond, ma, ca, v, one := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.GlobalAddr(ma, gM)
		w.GlobalAddr(ca, gC)
		w.ConstI(i, 0)
		w.ConstI(lim, int64(iters))
		w.ConstI(one, 1)
		loop, done := w.NewLabel(), w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		w.Intrin(-1, tir.IntrinMutexLock, ma)
		w.Load64(v, ca, 0)
		w.Bin(tir.Add, v, v, one)
		w.Store64(v, ca, 0)
		w.Intrin(-1, tir.IntrinMutexUnlock, ma)
		w.Bin(tir.Add, i, i, one)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}
	m := mb.Func("main", 0)
	{
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		tids := make([]tir.Reg, nThreads)
		for i := 0; i < nThreads; i++ {
			tids[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < nThreads; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tids[i])
		}
		ca, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(ca, gC)
		m.Load64(v, ca, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestAsanInstrumentationPreservesSemantics(t *testing.T) {
	mod := buildLoopSum(300)
	inst, err := asan.Instrument(mod)
	if err != nil {
		t.Fatal(err)
	}
	var sh *asan.Shadow
	opts := core.Options{
		DisableRecording: true,
		WrapAllocator: func(d *heap.Deterministic) heap.Allocator {
			return asan.NewAllocator(d, sh, 64<<10)
		},
	}
	// Shadow needs the runtime's memory; create in two phases.
	rtMem := mem.New(mem.DefaultConfig())
	sh = asan.NewShadow(rtMem) // same geometry as the runtime's arena
	opts.OnProbe = sh.OnProbe
	rt, err := core.New(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != oddSum(300) {
		t.Fatalf("result = %d, want %d", rep.Exit, oddSum(300))
	}
	if len(sh.Errors()) != 0 {
		t.Fatalf("false positives: %v", sh.Errors())
	}
}

func buildHeapOverflowWrite() *tir.Module {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	sz, p, v := m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(sz, 24)
	m.Intrin(p, tir.IntrinMalloc, sz)
	m.ConstI(v, 1)
	m.Store64(v, p, 0)  // fine
	m.Store64(v, p, 24) // one word past the end: redzone
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestAsanDetectsOverflowWrite(t *testing.T) {
	inst, err := asan.Instrument(buildHeapOverflowWrite())
	if err != nil {
		t.Fatal(err)
	}
	sh := asan.NewShadow(mem.New(mem.DefaultConfig()))
	opts := core.Options{
		DisableRecording: true,
		OnProbe:          sh.OnProbe,
		WrapAllocator: func(d *heap.Deterministic) heap.Allocator {
			return asan.NewAllocator(d, sh, 64<<10)
		},
	}
	rt, err := core.New(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	errs := sh.Errors()
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly the redzone write", errs)
	}
	if errs[0].Size != 8 {
		t.Fatalf("error = %+v", errs[0])
	}
}

func TestAsanDetectsUseAfterFreeWrite(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	sz, p, v := m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(sz, 64)
	m.Intrin(p, tir.IntrinMalloc, sz)
	m.Intrin(-1, tir.IntrinFree, p)
	m.ConstI(v, 9)
	m.Store64(v, p, 0) // write-after-free
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	inst, err := asan.Instrument(mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sh := asan.NewShadow(mem.New(mem.DefaultConfig()))
	opts := core.Options{
		DisableRecording: true,
		OnProbe:          sh.OnProbe,
		WrapAllocator: func(d *heap.Deterministic) heap.Allocator {
			return asan.NewAllocator(d, sh, 64<<10)
		},
	}
	rt, err := core.New(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sh.Errors()) != 1 {
		t.Fatalf("errors = %v", sh.Errors())
	}
}

func TestRRSingleCoreCorrectness(t *testing.T) {
	rt, err := rr.New(buildThreadedSum(4, 100), 7)
	if err != nil {
		t.Fatal(err)
	}
	exit, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if exit != 400 {
		t.Fatalf("rr result = %d, want 400", exit)
	}
	if len(rt.Schedule()) == 0 {
		t.Fatal("no schedule recorded")
	}
}

func TestRRIdenticalReplay(t *testing.T) {
	// Record once, then replay under the recorded schedule: heap images must
	// be byte-identical — the Table 1 RR row.
	rec, err := rr.New(buildThreadedSum(3, 80), 11)
	if err != nil {
		t.Fatal(err)
	}
	exit1, err := rec.Run()
	if err != nil {
		t.Fatal(err)
	}
	img1 := rec.Mem().HeapImage()

	rep, err := rr.New(buildThreadedSum(3, 80), 11)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetReplay(rec.Schedule())
	exit2, err := rep.Run()
	if err != nil {
		t.Fatal(err)
	}
	img2 := rep.Mem().HeapImage()
	if exit1 != exit2 {
		t.Fatalf("exit %d vs %d", exit1, exit2)
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("rr replay heap differs in %d bytes", d)
	}
}

func TestRRCondVarAndBarrier(t *testing.T) {
	mb := tir.NewModuleBuilder()
	gBar := mb.Global("bar", 8)
	gCnt := mb.Global("cnt", 8)
	gM := mb.Global("m", 8)
	w := mb.Func("worker", 1)
	{
		ba, ser, ma, ca, v, one := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.GlobalAddr(ba, gBar)
		w.GlobalAddr(ma, gM)
		w.GlobalAddr(ca, gCnt)
		w.ConstI(one, 1)
		w.Intrin(ser, tir.IntrinBarrierWait, ba)
		skip := w.NewLabel()
		w.Brz(ser, skip)
		w.Intrin(-1, tir.IntrinMutexLock, ma)
		w.Load64(v, ca, 0)
		w.Bin(tir.Add, v, v, one)
		w.Store64(v, ca, 0)
		w.Intrin(-1, tir.IntrinMutexUnlock, ma)
		w.Bind(skip)
		w.Ret(-1)
		w.Seal()
	}
	m := mb.Func("main", 0)
	{
		ba, n := m.NewReg(), m.NewReg()
		m.GlobalAddr(ba, gBar)
		m.ConstI(n, 3)
		m.Intrin(-1, tir.IntrinBarrierInit, ba, n)
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		tids := make([]tir.Reg, 3)
		for i := 0; i < 3; i++ {
			tids[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < 3; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tids[i])
		}
		ca, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(ca, gCnt)
		m.Load64(v, ca, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	rt, err := rr.New(mb.MustBuild(), 3)
	if err != nil {
		t.Fatal(err)
	}
	exit, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if exit != 1 {
		t.Fatalf("serial count = %d, want 1", exit)
	}
}
