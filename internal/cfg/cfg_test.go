package cfg

import (
	"testing"
	"testing/quick"

	"repro/internal/tir"
)

// diamond builds: entry → (then | else) → merge → ret, the canonical
// two-path function.
func diamond(t *testing.T) *tir.Function {
	t.Helper()
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	c, v := fb.NewReg(), fb.NewReg()
	fb.ConstI(c, 1)
	elseL, merge := fb.NewLabel(), fb.NewLabel()
	fb.Brz(c, elseL)
	fb.ConstI(v, 10)
	fb.Jmp(merge)
	fb.Bind(elseL)
	fb.ConstI(v, 20)
	fb.Bind(merge)
	fb.Ret(v)
	fb.Seal()
	mb.SetEntry("main")
	return mb.MustBuild().Funcs[0]
}

func loopFunc(t *testing.T) *tir.Function {
	t.Helper()
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(i, 0)
	fb.ConstI(lim, 10)
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, i, lim)
	fb.Brz(cond, done)
	fb.AddI(i, i, 1)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(i)
	fb.Seal()
	mb.SetEntry("main")
	return mb.MustBuild().Funcs[0]
}

func TestBuildDiamond(t *testing.T) {
	g := Build(diamond(t))
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 2 {
		t.Fatalf("entry succs = %v", g.Blocks[0].Succs)
	}
	if len(g.BackEdges) != 0 {
		t.Fatalf("diamond has no back edges, got %v", g.BackEdges)
	}
	// Merge block has two predecessors.
	merge := g.BlockOf(len(g.Fn.Code) - 1)
	if len(g.Blocks[merge].Preds) != 2 {
		t.Fatalf("merge preds = %v", g.Blocks[merge].Preds)
	}
}

func TestBuildLoopFindsBackEdge(t *testing.T) {
	g := Build(loopFunc(t))
	if len(g.BackEdges) != 1 {
		t.Fatalf("back edges = %v, want exactly 1", g.BackEdges)
	}
	e := g.BackEdges[0]
	if !g.IsBackEdge(e[0], e[1]) {
		t.Fatal("IsBackEdge inconsistent")
	}
}

func TestNumberPathsDiamond(t *testing.T) {
	g := Build(diamond(t))
	pn, err := NumberPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if pn.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", pn.NumPaths)
	}
	// The two entry→exit traces must get the two distinct IDs {0, 1}.
	entry := 0
	var thenB, elseB int
	sc := g.Blocks[entry].Succs
	thenB, elseB = sc[0], sc[1]
	merge := g.Blocks[thenB].Succs[0]
	id1 := pn.PathID([]int{entry, thenB, merge})
	id2 := pn.PathID([]int{entry, elseB, merge})
	if len(id1) != 1 || len(id2) != 1 {
		t.Fatalf("ids = %v %v", id1, id2)
	}
	if id1[0] == id2[0] {
		t.Fatalf("paths must get distinct IDs, both %d", id1[0])
	}
	if id1[0] >= pn.NumPaths || id2[0] >= pn.NumPaths {
		t.Fatalf("ids out of range: %d %d (NumPaths %d)", id1[0], id2[0], pn.NumPaths)
	}
}

func TestNumberPathsLoop(t *testing.T) {
	g := Build(loopFunc(t))
	pn, err := NumberPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if pn.NumPaths < 1 {
		t.Fatalf("NumPaths = %d", pn.NumPaths)
	}
	// A trace around the loop twice then exiting yields one ID per back-edge
	// crossing plus the final segment.
	e := g.BackEdges[0]
	head := e[1]
	body := e[0]
	exit := -1
	for _, s := range g.Blocks[head].Succs {
		if s != body {
			exit = s
		}
	}
	// entry(=head here or before it) — construct trace via blocks:
	trace := []int{head, body, head, body, head, exit}
	ids := pn.PathID(trace)
	if len(ids) != 3 {
		t.Fatalf("ids = %v, want 3 path segments (2 iterations + exit)", ids)
	}
}

// Property: Ball–Larus assigns every distinct acyclic entry→exit path in a
// random branch-tree function a unique ID within [0, NumPaths).
func TestQuickUniquePathIDs(t *testing.T) {
	f := func(depthSeed uint8) bool {
		depth := int(depthSeed%4) + 1
		mb := tir.NewModuleBuilder()
		fb := mb.Func("main", 0)
		c := fb.NewReg()
		fb.ConstI(c, 1)
		// Build a chain of `depth` diamonds: 2^depth paths.
		for d := 0; d < depth; d++ {
			elseL, merge := fb.NewLabel(), fb.NewLabel()
			fb.Brz(c, elseL)
			fb.AddI(c, c, 1)
			fb.Jmp(merge)
			fb.Bind(elseL)
			fb.AddI(c, c, 2)
			fb.Bind(merge)
		}
		fb.Ret(c)
		fb.Seal()
		mb.SetEntry("main")
		g := Build(mb.MustBuild().Funcs[0])
		pn, err := NumberPaths(g)
		if err != nil {
			return false
		}
		want := int64(1) << depth
		if pn.NumPaths != want {
			return false
		}
		// Enumerate all 2^depth traces and verify distinct in-range IDs.
		seen := make(map[int64]bool)
		for mask := 0; mask < int(want); mask++ {
			trace := []int{0}
			cur := 0
			for d := 0; d < depth; d++ {
				succs := g.Blocks[cur].Succs
				next := succs[(mask>>d)&1]
				trace = append(trace, next)
				cur = next
				merge := g.Blocks[cur].Succs[0]
				trace = append(trace, merge)
				cur = merge
			}
			ids := pn.PathID(trace)
			if len(ids) != 1 || ids[0] < 0 || ids[0] >= pn.NumPaths || seen[ids[0]] {
				return false
			}
			seen[ids[0]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderRejectsNothingOnReducibleGraphs(t *testing.T) {
	for _, fn := range []*tir.Function{diamond(t), loopFunc(t)} {
		g := Build(fn)
		if _, err := NumberPaths(g); err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
	}
}
