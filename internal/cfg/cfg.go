// Package cfg builds control-flow graphs for TIR functions and implements
// Ball–Larus efficient path profiling [Ball & Larus, MICRO 1996].
//
// The CLAP baseline of the evaluation (§5.3) records thread-local execution
// paths at runtime and reconstructs memory dependencies offline; the paper's
// authors re-implemented CLAP's recording with Ball–Larus path numbering in
// LLVM. This package provides the same machinery over TIR: block
// construction, back-edge detection, edge-increment assignment such that the
// sum of increments along any acyclic path is a unique path identifier, and
// the instrumentation points CLAP needs (function entry/exit and loop back
// edges).
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/tir"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start int // first instruction pc
	End   int // one past the last instruction pc
	Succs []int
	Preds []int
}

// Graph is one function's CFG.
type Graph struct {
	Fn     *tir.Function
	Blocks []*Block
	// blockAt maps an instruction pc to its block ID.
	blockAt []int
	// BackEdges lists (from, to) block pairs whose traversal re-enters an
	// earlier block (loop edges in reverse-post-order terms).
	BackEdges [][2]int
}

// Build constructs the CFG of f.
func Build(f *tir.Function) *Graph {
	n := len(f.Code)
	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range f.Code {
		switch in.Op {
		case tir.Jmp:
			leader[in.Imm] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case tir.Br, tir.Brz:
			leader[in.Imm] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case tir.Ret:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g := &Graph{Fn: f, blockAt: make([]int, n)}
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		b := &Block{ID: len(g.Blocks), Start: start, End: end}
		g.Blocks = append(g.Blocks, b)
		for pc := start; pc < end; pc++ {
			g.blockAt[pc] = b.ID
		}
		start = -1
	}
	for pc := 0; pc <= n; pc++ {
		if pc == n {
			flush(pc)
			break
		}
		if leader[pc] {
			flush(pc)
			start = pc
		}
	}
	// Successor edges.
	for _, b := range g.Blocks {
		last := f.Code[b.End-1]
		addEdge := func(to int) {
			tb := g.blockAt[to]
			b.Succs = append(b.Succs, tb)
			g.Blocks[tb].Preds = append(g.Blocks[tb].Preds, b.ID)
		}
		switch last.Op {
		case tir.Jmp:
			addEdge(int(last.Imm))
		case tir.Br, tir.Brz:
			addEdge(int(last.Imm))
			if b.End < n {
				addEdge(b.End)
			}
		case tir.Ret:
			// no successors
		default:
			if b.End < n {
				addEdge(b.End)
			}
		}
	}
	g.findBackEdges()
	return g
}

// BlockOf returns the block containing pc.
func (g *Graph) BlockOf(pc int) int { return g.blockAt[pc] }

// findBackEdges marks edges (u,v) where v is an ancestor of u in the DFS
// tree — the loop edges that Ball–Larus instruments to break cycles.
func (g *Graph) findBackEdges() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var dfs func(int)
	dfs = func(u int) {
		color[u] = gray
		for _, v := range g.Blocks[u].Succs {
			switch color[v] {
			case white:
				dfs(v)
			case gray:
				g.BackEdges = append(g.BackEdges, [2]int{u, v})
			}
		}
		color[u] = black
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
}

// IsBackEdge reports whether (u,v) is a recorded back edge.
func (g *Graph) IsBackEdge(u, v int) bool {
	for _, e := range g.BackEdges {
		if e[0] == u && e[1] == v {
			return true
		}
	}
	return false
}

// PathNumbering is a Ball–Larus edge-increment assignment for the acyclic
// graph obtained by removing back edges: NumPaths counts distinct acyclic
// paths from entry to any exit, and the sum of Inc over a path's edges is a
// unique identifier in [0, NumPaths).
type PathNumbering struct {
	G        *Graph
	NumPaths int64
	// Inc[from][to] is the increment on edge from→to (back edges excluded).
	Inc map[[2]int]int64
	// numPathsFrom[v] = number of acyclic paths from v to an exit.
	numPathsFrom []int64
}

// NumberPaths computes the Ball–Larus numbering of g.
func NumberPaths(g *Graph) (*PathNumbering, error) {
	n := len(g.Blocks)
	pn := &PathNumbering{G: g, Inc: make(map[[2]int]int64), numPathsFrom: make([]int64, n)}
	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	// Process in reverse topological order (Ball–Larus figure 5):
	//   numPaths(v) = 1 if v is an exit
	//   else sum over successors w: Inc(v,w) = running sum; numPaths(v) += numPaths(w)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		b := g.Blocks[v]
		isExit := true
		for _, w := range b.Succs {
			if !g.IsBackEdge(v, w) {
				isExit = false
			}
		}
		if isExit {
			pn.numPathsFrom[v] = 1
			continue
		}
		var sum int64
		for _, w := range b.Succs {
			if g.IsBackEdge(v, w) {
				continue
			}
			pn.Inc[[2]int{v, w}] = sum
			sum += pn.numPathsFrom[w]
		}
		pn.numPathsFrom[v] = sum
	}
	if n > 0 {
		pn.NumPaths = pn.numPathsFrom[0]
	}
	return pn, nil
}

// topoOrder returns a topological order of g ignoring back edges.
func topoOrder(g *Graph) ([]int, error) {
	n := len(g.Blocks)
	indeg := make([]int, n)
	for _, b := range g.Blocks {
		for _, w := range b.Succs {
			if !g.IsBackEdge(b.ID, w) {
				indeg[w]++
			}
		}
	}
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Blocks[v].Succs {
			if g.IsBackEdge(v, w) {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("cfg: graph is cyclic after back-edge removal")
	}
	return order, nil
}

// PathID walks a block trace (as produced by an execution) and folds it into
// the per-entry path identifiers, emitting one ID per completed acyclic path
// (at back edges and at function exit). Used by tests to validate the
// numbering against concrete traces.
func (pn *PathNumbering) PathID(trace []int) []int64 {
	var ids []int64
	var cur int64
	for i := 0; i+1 < len(trace); i++ {
		u, v := trace[i], trace[i+1]
		if pn.G.IsBackEdge(u, v) {
			ids = append(ids, cur)
			cur = 0
			continue
		}
		cur += pn.Inc[[2]int{u, v}]
	}
	ids = append(ids, cur)
	return ids
}
