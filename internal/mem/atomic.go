package mem

import "sync"

// Atomic 64-bit operations over the virtual address space. These model the
// processor's atomic instructions and are the substrate for "ad hoc
// synchronization" in programs under test (C/C++ atomics, §6): they are
// genuinely atomic across vthreads, but — exactly like the paper — they are
// NOT intercepted or recorded by the record-and-replay machinery. Programs
// that synchronize only through them therefore may not replay identically,
// which the canneal experiment reproduces.

var atomicMu sync.Mutex

// AtomicLoad64 atomically reads a 64-bit word.
func (m *Memory) AtomicLoad64(addr uint64) (uint64, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	return m.Load64(addr)
}

// AtomicStore64 atomically writes a 64-bit word.
func (m *Memory) AtomicStore64(addr uint64, v uint64) error {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	return m.Store64(addr, v)
}

// AtomicAdd64 atomically adds delta and returns the new value.
func (m *Memory) AtomicAdd64(addr uint64, delta uint64) (uint64, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	v, err := m.Load64(addr)
	if err != nil {
		return 0, err
	}
	v += delta
	if err := m.Store64(addr, v); err != nil {
		return 0, err
	}
	return v, nil
}

// AtomicCAS64 performs compare-and-swap; it returns 1 on success, 0 on
// failure.
func (m *Memory) AtomicCAS64(addr uint64, old, new uint64) (uint64, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	v, err := m.Load64(addr)
	if err != nil {
		return 0, err
	}
	if v != old {
		return 0, nil
	}
	if err := m.Store64(addr, new); err != nil {
		return 0, err
	}
	return 1, nil
}

// AtomicXchg64 atomically swaps in v and returns the previous value.
func (m *Memory) AtomicXchg64(addr uint64, v uint64) (uint64, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	old, err := m.Load64(addr)
	if err != nil {
		return 0, err
	}
	if err := m.Store64(addr, v); err != nil {
		return 0, err
	}
	return old, nil
}

// WatchOverlap reports whether [addr, addr+size) intersects an armed
// watchpoint. It is a pure check: the CPU uses it to attach the faulting
// thread's call stack to the hit (package interp).
func (m *Memory) WatchOverlap(addr uint64, size int) (Watchpoint, bool) {
	for i := 0; i < m.nwatches; i++ {
		w := m.watches[i]
		if addr < w.Addr+uint64(w.Size) && w.Addr < addr+uint64(size) {
			return w, true
		}
	}
	return Watchpoint{}, false
}

// HasWatchpoints reports whether any watchpoint is armed; the CPU uses it to
// keep the store fast path free of watch checks.
func (m *Memory) HasWatchpoints() bool { return m.nwatches > 0 }
