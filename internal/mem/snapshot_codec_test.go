package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	return New(Config{GlobalSize: 4096, HeapSize: 8192, StackSlot: 1024, MaxThreads: 4})
}

// TestSnapshotDeltaRoundTrip: apply(append(prev, cur)) == cur, against both
// the zero base and a previous snapshot, over sparse and dense mutations.
func TestSnapshotDeltaRoundTrip(t *testing.T) {
	m := testMemory(t)
	rng := rand.New(rand.NewSource(1))

	var prev *Snapshot
	for round := 0; round < 5; round++ {
		// Mutate a mix of runs and scattered bytes across all segments.
		for i := 0; i < 64; i++ {
			base := []uint64{GlobalBase, HeapBase, StackBase}[rng.Intn(3)]
			off := uint64(rng.Intn(3000))
			m.Store8(base+off, uint64(rng.Intn(256)))
		}
		m.Memset(HeapBase+uint64(rng.Intn(2048)), byte(rng.Intn(256)), 512)

		cur := m.Snapshot()
		delta, err := AppendSnapshotDelta(nil, prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ApplySnapshotDelta(prev, delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !got.Equal(cur) {
			t.Fatalf("round %d: delta round-trip differs in %d bytes", round, got.DiffCount(cur))
		}
		// Canonical: re-encoding the same pair is byte-identical.
		delta2, err := AppendSnapshotDelta(nil, prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(delta, delta2) {
			t.Fatalf("round %d: delta encoding not canonical", round)
		}
		prev = cur
	}
}

// TestSnapshotDeltaCompresses: an unchanged snapshot encodes to a few bytes,
// not the address-space size.
func TestSnapshotDeltaCompresses(t *testing.T) {
	m := testMemory(t)
	m.Store64(HeapBase+128, 0xdeadbeef)
	s1 := m.Snapshot()
	s2 := m.Snapshot()
	delta, err := AppendSnapshotDelta(nil, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) > 64 {
		t.Fatalf("identical snapshots encode to %d bytes", len(delta))
	}
}

// TestSnapshotDeltaRejectsCorruption: truncation, trailing bytes, geometry
// mismatch, and overflowing runs all fail loudly.
func TestSnapshotDeltaRejectsCorruption(t *testing.T) {
	m := testMemory(t)
	m.Store64(GlobalBase+8, 42)
	cur := m.Snapshot()
	delta, err := AppendSnapshotDelta(nil, nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplySnapshotDelta(nil, delta[:len(delta)/2]); err == nil {
		t.Fatal("truncated delta accepted")
	}
	if _, err := ApplySnapshotDelta(nil, append(append([]byte(nil), delta...), 0x07)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	other := New(Config{GlobalSize: 2048, HeapSize: 8192, StackSlot: 1024, MaxThreads: 4}).Snapshot()
	if _, err := ApplySnapshotDelta(other, delta); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := AppendSnapshotDelta(nil, other, cur); err == nil {
		t.Fatal("encoding across geometries accepted")
	}
	mut := append([]byte(nil), delta...)
	mut[3] = 0xff // inflate a run length
	if _, err := ApplySnapshotDelta(nil, mut); err == nil {
		// Not every mutation must fail (it may decode to different bytes),
		// but it must never panic; reaching here without a panic is fine.
		t.Log("mutated delta decoded; bounds held")
	}
}
