package mem

import (
	"testing"
	"testing/quick"
)

func newMem(t testing.TB) *Memory {
	t.Helper()
	return New(DefaultConfig())
}

func TestLoadStoreRoundTrip64(t *testing.T) {
	m := newMem(t)
	addr := HeapBase + 128
	if err := m.Store64(addr, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("got %#x", v)
	}
}

func TestLoadStoreRoundTrip8(t *testing.T) {
	m := newMem(t)
	addr := GlobalBase + 5
	if err := m.Store8(addr, 0x12F); err != nil { // truncates to byte
		t.Fatal(err)
	}
	v, err := m.Load8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x2F {
		t.Fatalf("got %#x, want 0x2f", v)
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	m := newMem(t)
	if _, err := m.Load64(0); err == nil {
		t.Fatal("null load must fault")
	}
	if err := m.Store64(0, 1); err == nil {
		t.Fatal("null store must fault")
	}
	var f *Fault
	_, err := m.Load8(8)
	if f, _ = err.(*Fault); f == nil {
		t.Fatalf("want *Fault, got %T", err)
	}
	if f.Addr != 8 {
		t.Fatalf("fault addr = %#x", f.Addr)
	}
}

func TestSegmentBoundaryFaults(t *testing.T) {
	m := newMem(t)
	cfg := m.Config()
	// A 64-bit store whose last byte crosses the end of the heap must fault.
	if err := m.Store64(HeapBase+uint64(cfg.HeapSize)-4, 1); err == nil {
		t.Fatal("straddling store must fault")
	}
	// A store fully inside must succeed.
	if err := m.Store64(HeapBase+uint64(cfg.HeapSize)-8, 1); err != nil {
		t.Fatalf("in-bounds store failed: %v", err)
	}
}

func TestStackRanges(t *testing.T) {
	m := newMem(t)
	b0, s0 := m.StackRange(0)
	b1, _ := m.StackRange(1)
	if b0 != StackBase {
		t.Fatalf("slot 0 base %#x", b0)
	}
	if b1 != StackBase+uint64(s0) {
		t.Fatalf("slot 1 base %#x, want %#x", b1, StackBase+uint64(s0))
	}
	if err := m.Store64(b1, 42); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := newMem(t)
	m.Store64(HeapBase, 111)
	m.Store64(GlobalBase, 222)
	m.Store64(StackBase, 333)
	snap := m.Snapshot()
	m.Store64(HeapBase, 999)
	m.Store64(GlobalBase, 888)
	m.Store64(StackBase, 777)
	m.Restore(snap)
	for _, tc := range []struct {
		addr uint64
		want uint64
	}{{HeapBase, 111}, {GlobalBase, 222}, {StackBase, 333}} {
		v, err := m.Load64(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		if v != tc.want {
			t.Errorf("addr %#x = %d, want %d", tc.addr, v, tc.want)
		}
	}
}

func TestSnapshotIsIsolatedFromLaterWrites(t *testing.T) {
	m := newMem(t)
	m.Store8(HeapBase+1, 7)
	snap := m.Snapshot()
	m.Store8(HeapBase+1, 9)
	m2 := New(DefaultConfig())
	m2.Restore(snap)
	v, _ := m2.Load8(HeapBase + 1)
	if v != 7 {
		t.Fatalf("snapshot leaked later write: got %d", v)
	}
}

func TestWatchpointFiresOnOverlap(t *testing.T) {
	m := newMem(t)
	var hits []WatchHit
	m.SetWatchHandler(func(h WatchHit) { hits = append(hits, h) })
	if err := m.ArmWatchpoint(HeapBase+100, 8); err != nil {
		t.Fatal(err)
	}
	m.Store64(HeapBase+96, 1)  // overlaps bytes 96..103 → hits 100..103
	m.Store64(HeapBase+200, 1) // no overlap
	m.Store8(HeapBase+107, 1)  // last watched byte
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (%v)", len(hits), hits)
	}
}

func TestWatchpointLimitIsFour(t *testing.T) {
	m := newMem(t)
	for i := 0; i < MaxWatchpoints; i++ {
		if err := m.ArmWatchpoint(HeapBase+uint64(i*16), 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ArmWatchpoint(HeapBase+512, 8); err == nil {
		t.Fatal("fifth watchpoint must be rejected (hardware limit)")
	}
	m.ClearWatchpoints()
	if err := m.ArmWatchpoint(HeapBase+512, 8); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	if n := len(m.Watchpoints()); n != 1 {
		t.Fatalf("watchpoints = %d", n)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	m := newMem(t)
	if err := m.Memset(HeapBase, 0xAB, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.Memcpy(HeapBase+64, HeapBase, 32); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadBytes(HeapBase+64, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0xAB {
			t.Fatalf("byte %d = %#x", i, v)
		}
	}
	if err := m.Memcpy(HeapBase, 0, 8); err == nil {
		t.Fatal("memcpy from null must fault")
	}
}

func TestDiffBytes(t *testing.T) {
	if d := DiffBytes([]byte{1, 2, 3}, []byte{1, 9, 3}); d != 1 {
		t.Fatalf("diff = %d", d)
	}
	if d := DiffBytes([]byte{1, 2}, []byte{1, 2, 3, 4}); d != 2 {
		t.Fatalf("unequal length diff = %d", d)
	}
	if p := DiffPercent(make([]byte, 100), make([]byte, 100)); p != 0 {
		t.Fatalf("identical diff%% = %f", p)
	}
}

func TestDiffAddrs(t *testing.T) {
	a := []byte{0, 0, 5, 0, 7}
	b := []byte{0, 0, 0, 0, 0}
	addrs := DiffAddrs(a, b, HeapBase, 4)
	if len(addrs) != 2 || addrs[0] != HeapBase+2 || addrs[1] != HeapBase+4 {
		t.Fatalf("addrs = %v", addrs)
	}
	if got := DiffAddrs(a, b, HeapBase, 1); len(got) != 1 {
		t.Fatalf("max not honoured: %v", got)
	}
}

// Property: store-then-load returns the stored value for arbitrary values and
// in-bounds offsets.
func TestQuickStoreLoad64(t *testing.T) {
	m := newMem(t)
	f := func(v uint64, off uint16) bool {
		addr := HeapBase + uint64(off)*8
		if err := m.Store64(addr, v); err != nil {
			return false
		}
		got, err := m.Load64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is a fixed point — restoring twice equals
// restoring once.
func TestQuickSnapshotIdempotent(t *testing.T) {
	m := newMem(t)
	f := func(vals []byte) bool {
		for i, v := range vals {
			if i >= 256 {
				break
			}
			m.Store8(HeapBase+uint64(i), uint64(v))
		}
		s := m.Snapshot()
		m.Memset(HeapBase, 0xFF, 256)
		m.Restore(s)
		first := m.HeapImage()
		m.Restore(s)
		second := m.HeapImage()
		return DiffBytes(first, second) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
