package mem

// Snapshot is a full copy of the writable address space taken at an epoch
// boundary (§3.1). All vthreads must be quiescent when a snapshot is taken or
// restored; the epoch coordinator guarantees this.
type Snapshot struct {
	globals []byte
	heap    []byte
	stacks  []byte
}

// Snapshot copies every writable segment.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		globals: make([]byte, len(m.globals)),
		heap:    make([]byte, len(m.heap)),
		stacks:  make([]byte, len(m.stacks)),
	}
	copy(s.globals, m.globals)
	copy(s.heap, m.heap)
	copy(s.stacks, m.stacks)
	return s
}

// Restore copies a snapshot back over the address space, implementing the
// memory portion of rollback (§3.4). Stack areas beyond the checkpointed
// image are restored wholesale, which subsumes the paper's zeroing of the
// unused stack remainder.
func (m *Memory) Restore(s *Snapshot) {
	copy(m.globals, s.globals)
	copy(m.heap, s.heap)
	copy(m.stacks, s.stacks)
}

// HeapImage returns a copy of the current heap arena, used by the Table 1
// identity experiment.
func (m *Memory) HeapImage() []byte {
	out := make([]byte, len(m.heap))
	copy(out, m.heap)
	return out
}

// DiffBytes counts positions at which a and b differ. Slices of unequal
// length differ in every position beyond the shorter length.
func DiffBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	if len(a) != len(b) {
		long := len(a)
		if len(b) > long {
			long = len(b)
		}
		diff += long - n
	}
	return diff
}

// DiffPercent returns 100 * DiffBytes / len, the Table 1 metric.
func DiffPercent(a, b []byte) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(DiffBytes(a, b)) / float64(n)
}

// DiffAddrs reports up to max addresses (base-relative) at which a and b
// differ; used by detectors to locate corrupted canaries.
func DiffAddrs(a, b []byte, base uint64, max int) []uint64 {
	var out []uint64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n && len(out) < max; i++ {
		if a[i] != b[i] {
			out = append(out, base+uint64(i))
		}
	}
	return out
}
