package mem

import (
	"encoding/binary"
	"fmt"
)

// Snapshot is a full copy of the writable address space taken at an epoch
// boundary (§3.1). All vthreads must be quiescent when a snapshot is taken or
// restored; the epoch coordinator guarantees this.
type Snapshot struct {
	globals []byte
	heap    []byte
	stacks  []byte
}

// Snapshot copies every writable segment.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		globals: make([]byte, len(m.globals)),
		heap:    make([]byte, len(m.heap)),
		stacks:  make([]byte, len(m.stacks)),
	}
	copy(s.globals, m.globals)
	copy(s.heap, m.heap)
	copy(s.stacks, m.stacks)
	return s
}

// Restore copies a snapshot back over the address space, implementing the
// memory portion of rollback (§3.4). Stack areas beyond the checkpointed
// image are restored wholesale, which subsumes the paper's zeroing of the
// unused stack remainder.
func (m *Memory) Restore(s *Snapshot) {
	copy(m.globals, s.globals)
	copy(m.heap, s.heap)
	copy(m.stacks, s.stacks)
}

// Lens returns the byte sizes of the snapshot's globals, heap, and stacks
// images; a restore target must be configured identically.
func (s *Snapshot) Lens() (globals, heap, stacks int) {
	return len(s.globals), len(s.heap), len(s.stacks)
}

// Equal reports whether two snapshots are byte-identical — the segment
// stitching check: a replayed segment's end state must match the next
// recorded checkpoint exactly.
func (s *Snapshot) Equal(o *Snapshot) bool {
	return s.DiffCount(o) == 0
}

// DiffCount counts differing byte positions across all three segments
// (diagnostics for a failed stitch).
func (s *Snapshot) DiffCount(o *Snapshot) int {
	if o == nil {
		return len(s.globals) + len(s.heap) + len(s.stacks)
	}
	return DiffBytes(s.globals, o.globals) +
		DiffBytes(s.heap, o.heap) +
		DiffBytes(s.stacks, o.stacks)
}

// --- snapshot delta codec -------------------------------------------------
//
// Checkpoint frames persist snapshots delta-encoded against the previous
// checkpoint: each segment is XORed with its predecessor image (zero when
// there is none), and the XOR stream — overwhelmingly zero, because most of
// the address space does not change between checkpoints — is run-length
// encoded as alternating zero-run / literal-run pairs. Decoding folds the
// delta back over the predecessor, so reconstructing checkpoint k costs the
// deltas of checkpoints 1..k, not k full images.
//
//	delta   := glen:uvarint hlen:uvarint slen:uvarint seg seg seg
//	seg     := run* (runs cover exactly the declared length)
//	run     := zeros:uvarint lit:uvarint litbyte*lit
//
// The encoding is canonical: every zero run is maximal (a literal run never
// contains 8 or more consecutive zero XOR bytes), so equal inputs produce
// identical bytes.

// minZeroRun is the shortest XOR zero run worth breaking a literal for: a
// run header costs two varints, so runs shorter than this are cheaper left
// inside the literal.
const minZeroRun = 8

// AppendSnapshotDelta appends the delta encoding of cur against prev. A nil
// prev encodes against an all-zero image of the same geometry (the first
// checkpoint of a trace). prev and cur must have identical segment lengths.
func AppendSnapshotDelta(b []byte, prev, cur *Snapshot) ([]byte, error) {
	if prev != nil {
		pg, ph, ps := prev.Lens()
		cg, ch, cs := cur.Lens()
		if pg != cg || ph != ch || ps != cs {
			return nil, fmt.Errorf("mem: snapshot delta across mismatched geometries (%d/%d/%d vs %d/%d/%d)",
				pg, ph, ps, cg, ch, cs)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(cur.globals)))
	b = binary.AppendUvarint(b, uint64(len(cur.heap)))
	b = binary.AppendUvarint(b, uint64(len(cur.stacks)))
	segs := [3][2][]byte{
		{curPrev(prev).globals, cur.globals},
		{curPrev(prev).heap, cur.heap},
		{curPrev(prev).stacks, cur.stacks},
	}
	for _, s := range segs {
		b = appendSegDelta(b, s[0], s[1])
	}
	return b, nil
}

var zeroSnapshot Snapshot

func curPrev(prev *Snapshot) *Snapshot {
	if prev == nil {
		return &zeroSnapshot
	}
	return prev
}

// xorAt returns cur[i] ^ prev[i], treating a short (or empty) prev as zero.
func xorAt(prev, cur []byte, i int) byte {
	if i < len(prev) {
		return cur[i] ^ prev[i]
	}
	return cur[i]
}

func appendSegDelta(b []byte, prev, cur []byte) []byte {
	i := 0
	for i < len(cur) {
		zs := i
		for i < len(cur) && xorAt(prev, cur, i) == 0 {
			i++
		}
		zeros := i - zs
		ls := i
		// A literal run extends until a maximal zero run of at least
		// minZeroRun begins (or the segment ends).
		for i < len(cur) {
			if xorAt(prev, cur, i) != 0 {
				i++
				continue
			}
			j := i
			for j < len(cur) && xorAt(prev, cur, j) == 0 {
				j++
			}
			if j-i >= minZeroRun || j == len(cur) {
				break
			}
			i = j
		}
		if zeros == 0 && i == ls {
			break // nothing left
		}
		b = binary.AppendUvarint(b, uint64(zeros))
		b = binary.AppendUvarint(b, uint64(i-ls))
		for k := ls; k < i; k++ {
			b = append(b, xorAt(prev, cur, k))
		}
	}
	return b
}

// ApplySnapshotDelta reconstructs the snapshot a delta encodes by folding it
// over prev (nil prev = all-zero base). It returns a fresh snapshot; prev is
// not mutated.
func ApplySnapshotDelta(prev *Snapshot, data []byte) (*Snapshot, error) {
	var lens [3]int
	rest := data
	for i := range lens {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("mem: truncated snapshot delta header")
		}
		const maxSeg = 1 << 32
		if v > maxSeg {
			return nil, fmt.Errorf("mem: implausible snapshot segment length %d", v)
		}
		lens[i] = int(v)
		rest = rest[n:]
	}
	if prev != nil {
		pg, ph, ps := prev.Lens()
		if pg != lens[0] || ph != lens[1] || ps != lens[2] {
			return nil, fmt.Errorf("mem: snapshot delta geometry %d/%d/%d does not match base %d/%d/%d",
				lens[0], lens[1], lens[2], pg, ph, ps)
		}
	}
	out := &Snapshot{
		globals: make([]byte, lens[0]),
		heap:    make([]byte, lens[1]),
		stacks:  make([]byte, lens[2]),
	}
	base := curPrev(prev)
	var err error
	if rest, err = applySegDelta(out.globals, base.globals, rest); err != nil {
		return nil, err
	}
	if rest, err = applySegDelta(out.heap, base.heap, rest); err != nil {
		return nil, err
	}
	if rest, err = applySegDelta(out.stacks, base.stacks, rest); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("mem: %d trailing bytes in snapshot delta", len(rest))
	}
	return out, nil
}

func applySegDelta(dst, prev, data []byte) ([]byte, error) {
	copy(dst, prev)
	pos := 0
	for pos < len(dst) {
		zeros, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("mem: truncated snapshot delta run at offset %d", pos)
		}
		data = data[n:]
		lit, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("mem: truncated snapshot delta run at offset %d", pos)
		}
		data = data[n:]
		if zeros > uint64(len(dst)-pos) || lit > uint64(len(dst)-pos)-zeros {
			return nil, fmt.Errorf("mem: snapshot delta run overflows segment (%d+%d at %d/%d)",
				zeros, lit, pos, len(dst))
		}
		if lit > uint64(len(data)) {
			return nil, fmt.Errorf("mem: snapshot delta literal run of %d with %d bytes left", lit, len(data))
		}
		pos += int(zeros)
		for i := 0; i < int(lit); i++ {
			dst[pos] ^= data[i]
			pos++
		}
		data = data[lit:]
	}
	return data, nil
}

// HeapImage returns a copy of the current heap arena, used by the Table 1
// identity experiment.
func (m *Memory) HeapImage() []byte {
	out := make([]byte, len(m.heap))
	copy(out, m.heap)
	return out
}

// DiffBytes counts positions at which a and b differ. Slices of unequal
// length differ in every position beyond the shorter length.
func DiffBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	if len(a) != len(b) {
		long := len(a)
		if len(b) > long {
			long = len(b)
		}
		diff += long - n
	}
	return diff
}

// DiffPercent returns 100 * DiffBytes / len, the Table 1 metric.
func DiffPercent(a, b []byte) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(DiffBytes(a, b)) / float64(n)
}

// DiffAddrs reports up to max addresses (base-relative) at which a and b
// differ; used by detectors to locate corrupted canaries.
func DiffAddrs(a, b []byte, base uint64, max int) []uint64 {
	var out []uint64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n && len(out) < max; i++ {
		if a[i] != b[i] {
			out = append(out, base+uint64(i))
		}
	}
	return out
}
