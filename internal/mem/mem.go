// Package mem implements the virtual address space shared by all vthreads of
// a program under test: a globals segment, a heap arena, and per-thread stack
// slots.
//
// It stands in for the writable memory of the native process that iReplayer
// checkpoints by parsing /proc/self/maps (§3.1). Because every segment is an
// ordinary byte slice, checkpointing is a copy, rollback is a copy back, and
// the identity check of Table 1 is a byte-level diff of heap images.
//
// Concurrent unsynchronized access from multiple vthreads is intentional:
// races in the program under test manifest as real interleavings on these
// slices, which is what the divergence-search replay machinery (§3.5) must
// cope with.
package mem

import "fmt"

// Segment base addresses. Virtual addresses are uint64 and never collide
// across segments; address 0 is unmapped so that null dereferences fault.
const (
	GlobalBase uint64 = 0x1000_0000
	HeapBase   uint64 = 0x4000_0000
	StackBase  uint64 = 0x7000_0000
)

// Config sizes the address space.
type Config struct {
	// GlobalSize is the byte size of the globals segment.
	GlobalSize int64
	// HeapSize is the byte size of the heap arena.
	HeapSize int64
	// StackSlot is the byte size of one thread stack.
	StackSlot int64
	// MaxThreads bounds the number of stack slots.
	MaxThreads int
}

// DefaultConfig returns a laptop-scale address space adequate for every
// workload in this repository.
func DefaultConfig() Config {
	return Config{
		GlobalSize: 1 << 20,  // 1 MiB of globals
		HeapSize:   16 << 20, // 16 MiB heap arena
		StackSlot:  64 << 10, // 64 KiB per-thread stacks
		MaxThreads: 64,
	}
}

// Fault describes an invalid memory access.
type Fault struct {
	Addr uint64
	Size int
	Op   string // "load" or "store"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: %s of %d bytes at %#x", f.Op, f.Size, f.Addr)
}

// MaxWatchpoints mirrors the four hardware debug registers the paper uses
// via perf_event_open (§4.1): at most four addresses can be watched per
// re-execution.
const MaxWatchpoints = 4

// Watchpoint is an armed address range; Hit is invoked synchronously by the
// storing thread.
type Watchpoint struct {
	Addr uint64
	Size int
}

// WatchHit reports a store that touched a watched range.
type WatchHit struct {
	Watch Watchpoint
	Addr  uint64
	Size  int
}

// Memory is one program's address space.
type Memory struct {
	cfg     Config
	globals []byte
	heap    []byte
	stacks  []byte // MaxThreads slots of StackSlot bytes each

	watches  [MaxWatchpoints]Watchpoint
	nwatches int
	onWatch  func(WatchHit)
}

// New builds an address space from cfg.
func New(cfg Config) *Memory {
	if cfg.GlobalSize <= 0 || cfg.HeapSize <= 0 || cfg.StackSlot <= 0 || cfg.MaxThreads <= 0 {
		panic("mem: invalid config")
	}
	return &Memory{
		cfg:     cfg,
		globals: make([]byte, cfg.GlobalSize),
		heap:    make([]byte, cfg.HeapSize),
		stacks:  make([]byte, cfg.StackSlot*int64(cfg.MaxThreads)),
	}
}

// Config returns the sizing used to build this address space.
func (m *Memory) Config() Config { return m.cfg }

// HeapRange returns the [base, base+size) range of the heap arena.
func (m *Memory) HeapRange() (base uint64, size int64) {
	return HeapBase, m.cfg.HeapSize
}

// StackRange returns the stack slot range for thread slot i.
func (m *Memory) StackRange(slot int) (base uint64, size int64) {
	if slot < 0 || slot >= m.cfg.MaxThreads {
		panic("mem: stack slot out of range")
	}
	return StackBase + uint64(int64(slot)*m.cfg.StackSlot), m.cfg.StackSlot
}

// resolve maps addr to a backing slice window of length size.
func (m *Memory) resolve(addr uint64, size int, op string) ([]byte, error) {
	switch {
	case addr >= GlobalBase && addr+uint64(size) <= GlobalBase+uint64(len(m.globals)):
		off := addr - GlobalBase
		return m.globals[off : off+uint64(size)], nil
	case addr >= HeapBase && addr+uint64(size) <= HeapBase+uint64(len(m.heap)):
		off := addr - HeapBase
		return m.heap[off : off+uint64(size)], nil
	case addr >= StackBase && addr+uint64(size) <= StackBase+uint64(len(m.stacks)):
		off := addr - StackBase
		return m.stacks[off : off+uint64(size)], nil
	}
	return nil, &Fault{Addr: addr, Size: size, Op: op}
}

// Valid reports whether [addr, addr+size) is mapped.
func (m *Memory) Valid(addr uint64, size int) bool {
	_, err := m.resolve(addr, size, "probe")
	return err == nil
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint64) (uint64, error) {
	w, err := m.resolve(addr, 1, "load")
	if err != nil {
		return 0, err
	}
	return uint64(w[0]), nil
}

// Load64 reads a little-endian 64-bit word.
func (m *Memory) Load64(addr uint64) (uint64, error) {
	w, err := m.resolve(addr, 8, "load")
	if err != nil {
		return 0, err
	}
	// Inlined little-endian decode; races between vthreads are modeled
	// hardware behaviour, so no synchronization here.
	return uint64(w[0]) | uint64(w[1])<<8 | uint64(w[2])<<16 | uint64(w[3])<<24 |
		uint64(w[4])<<32 | uint64(w[5])<<40 | uint64(w[6])<<48 | uint64(w[7])<<56, nil
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint64, v uint64) error {
	w, err := m.resolve(addr, 1, "store")
	if err != nil {
		return err
	}
	w[0] = byte(v)
	m.checkWatch(addr, 1)
	return nil
}

// Store64 writes a little-endian 64-bit word.
func (m *Memory) Store64(addr uint64, v uint64) error {
	w, err := m.resolve(addr, 8, "store")
	if err != nil {
		return err
	}
	w[0] = byte(v)
	w[1] = byte(v >> 8)
	w[2] = byte(v >> 16)
	w[3] = byte(v >> 24)
	w[4] = byte(v >> 32)
	w[5] = byte(v >> 40)
	w[6] = byte(v >> 48)
	w[7] = byte(v >> 56)
	m.checkWatch(addr, 8)
	return nil
}

// Bytes returns a read-write window over [addr, addr+size). Callers that
// mutate through the window must invoke NoteStore themselves if watchpoint
// semantics are required.
func (m *Memory) Bytes(addr uint64, size int) ([]byte, error) {
	return m.resolve(addr, size, "access")
}

// ReadBytes copies out of memory.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	w, err := m.resolve(addr, n, "load")
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, w)
	return out, nil
}

// WriteBytes copies into memory.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	w, err := m.resolve(addr, len(b), "store")
	if err != nil {
		return err
	}
	copy(w, b)
	m.checkWatch(addr, len(b))
	return nil
}

// Memset fills [addr, addr+n) with v.
func (m *Memory) Memset(addr uint64, v byte, n int) error {
	w, err := m.resolve(addr, n, "store")
	if err != nil {
		return err
	}
	for i := range w {
		w[i] = v
	}
	m.checkWatch(addr, n)
	return nil
}

// Memcpy copies n bytes from src to dst within the address space.
func (m *Memory) Memcpy(dst, src uint64, n int) error {
	s, err := m.resolve(src, n, "load")
	if err != nil {
		return err
	}
	d, err := m.resolve(dst, n, "store")
	if err != nil {
		return err
	}
	copy(d, s)
	m.checkWatch(dst, n)
	return nil
}

// NoteStore applies watchpoint checking for an externally performed write.
func (m *Memory) NoteStore(addr uint64, size int) { m.checkWatch(addr, size) }

func (m *Memory) checkWatch(addr uint64, size int) {
	if m.nwatches == 0 {
		return
	}
	for i := 0; i < m.nwatches; i++ {
		w := m.watches[i]
		if addr < w.Addr+uint64(w.Size) && w.Addr < addr+uint64(size) {
			if m.onWatch != nil {
				m.onWatch(WatchHit{Watch: w, Addr: addr, Size: size})
			}
		}
	}
}

// SetWatchHandler installs the callback invoked on watchpoint hits.
func (m *Memory) SetWatchHandler(fn func(WatchHit)) { m.onWatch = fn }

// ArmWatchpoint arms a watchpoint; it fails once all MaxWatchpoints slots are
// occupied, mirroring the hardware debug-register limit.
func (m *Memory) ArmWatchpoint(addr uint64, size int) error {
	if m.nwatches >= MaxWatchpoints {
		return fmt.Errorf("mem: all %d watchpoints in use", MaxWatchpoints)
	}
	m.watches[m.nwatches] = Watchpoint{Addr: addr, Size: size}
	m.nwatches++
	return nil
}

// ClearWatchpoints disarms all watchpoints.
func (m *Memory) ClearWatchpoints() { m.nwatches = 0 }

// Watchpoints returns the armed watchpoints.
func (m *Memory) Watchpoints() []Watchpoint {
	out := make([]Watchpoint, m.nwatches)
	copy(out, m.watches[:m.nwatches])
	return out
}
