package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Values are kept as strings: spans are for
// timelines and debugging, not aggregation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as stored in a Recorder ring.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"` // 0 = root
	TID    int    `json:"tid"`              // logical track (e.g. segment index)
	Name   string `json:"name"`
	Start  time.Time
	End    time.Time
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Dur returns the span's wall duration.
func (r SpanRecord) Dur() time.Duration { return r.End.Sub(r.Start) }

// Recorder collects completed spans into a bounded ring; when full, the
// oldest records are dropped. A nil *Recorder is valid and records nothing,
// so instrumented code paths never need to branch on "is tracing on".
type Recorder struct {
	mu      sync.Mutex
	ring    []SpanRecord
	next    int  // ring write cursor
	wrapped bool // ring has overwritten at least one record
	dropped uint64
	lastID  atomic.Uint64
}

// NewRecorder returns a recorder retaining up to cap completed spans
// (drop-oldest). Non-positive cap defaults to 4096.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{ring: make([]SpanRecord, 0, cap)}
}

// Start opens a root span. The returned *Span is nil-safe: if r is nil or
// telemetry is disabled, Start returns nil and every Span method no-ops.
func (r *Recorder) Start(name string) *Span {
	return r.StartAt(name, time.Now())
}

// StartAt opens a root span with an explicit start time, for callers that
// time a phase themselves and attach the span after the fact.
func (r *Recorder) StartAt(name string, start time.Time) *Span {
	if r == nil || !enabled.Load() {
		return nil
	}
	return &Span{rec: r, id: r.lastID.Add(1), name: name, start: start}
}

// add stores one completed record, dropping the oldest when full.
func (r *Recorder) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
		return
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % cap(r.ring)
	r.wrapped = true
	r.dropped++
}

// Snapshot returns the retained spans oldest-first, plus how many were
// dropped by ring overflow.
func (r *Recorder) Snapshot() (spans []SpanRecord, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.ring))
	if r.wrapped {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out, r.dropped
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Span is an in-flight span. All methods are safe on a nil receiver, so
// callers can thread a possibly-nil span through deep call stacks without
// guards.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	tid    int
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  []Attr
	done   bool
}

// Child opens a sub-span under s on the same track.
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, time.Now())
}

// ChildAt opens a sub-span with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		rec: s.rec, id: s.rec.lastID.Add(1), parent: s.id,
		tid: s.tid, name: name, start: start,
	}
}

// SetTID assigns the span (and its future children) to a logical track;
// the Chrome exporter maps tracks to tid rows.
func (s *Span) SetTID(tid int) {
	if s != nil {
		s.tid = tid
	}
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span and commits it to the recorder ring. End is
// idempotent; only the first call records.
func (s *Span) End() {
	s.EndAt(time.Now())
}

// EndAt closes the span with an explicit end time.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.rec.add(SpanRecord{
		ID: s.id, Parent: s.parent, TID: s.tid,
		Name: s.name, Start: s.start, End: end, Attrs: attrs,
	})
}

// Record stores a pre-timed span (start..end) as a child of s without the
// open/close dance — used when the measured interval is already over by the
// time the caller can reach the recorder.
func (s *Span) Record(name string, start, end time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.add(SpanRecord{
		ID: s.rec.lastID.Add(1), Parent: s.id, TID: s.tid,
		Name: name, Start: start, End: end, Attrs: attrs,
	})
}
