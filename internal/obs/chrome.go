package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds, per the trace-event format spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace writes the spans as Chrome trace-event JSON ("X" complete
// events), loadable directly in Perfetto or chrome://tracing. Timestamps
// are rebased so the earliest span starts at ts=0; events are emitted in
// ascending-ts order with parents before their children.
func ChromeTrace(w io.Writer, spans []SpanRecord) error {
	evs := make([]chromeEvent, 0, len(spans))
	if len(spans) > 0 {
		base := spans[0].Start
		for _, s := range spans[1:] {
			if s.Start.Before(base) {
				base = s.Start
			}
		}
		for _, s := range spans {
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
				Dur:  float64(s.Dur().Nanoseconds()) / 1e3,
				PID:  1,
				TID:  s.TID,
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]string, len(s.Attrs))
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			evs = append(evs, ev)
		}
		// Ascending start time; at equal ts the longer (enclosing) span
		// first so viewers nest children correctly.
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayUnit: "ms"})
}
