package obs

// Static conformance rules for instrument names and label names. This file
// is the single rule implementation shared by three enforcement layers:
//
//   - Registry constructors (NewCounter, NewHistogramVec, ...) panic at
//     registration time when a name or label violates them;
//   - LintProm applies them to every family a text exposition declares, so
//     a foreign exposition merged into ours is held to the same bar;
//   - the ir-vet `obsconst` analyzer applies them at compile time to the
//     constant arguments of registration call sites.
//
// Keeping one implementation here is what lets the runtime exposition lint
// and the static call-site lint never drift (docs/STATIC_ANALYSIS.md).

import (
	"fmt"
	"strings"
)

// Instrument kinds as LintName spells them. These match the Prometheus TYPE
// vocabulary for the types the registry can build.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// reservedSuffixes are sample-name suffixes the exposition format owns:
// histogram families expand into them, so no declared family may claim one.
var reservedSuffixes = []string{"_bucket", "_sum", "_count"}

// LintName checks one instrument name against the repo's static rules for
// the given kind (KindCounter, KindGauge, KindHistogram, or "" when the
// kind is unknown). It returns one message per problem, empty when clean.
func LintName(kind, name string) []string {
	var probs []string
	if !validMetricName(name) {
		probs = append(probs, fmt.Sprintf("invalid metric name %q (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name))
		return probs
	}
	for _, suf := range reservedSuffixes {
		if strings.HasSuffix(name, suf) {
			probs = append(probs, fmt.Sprintf("metric %s ends in reserved histogram suffix %s", name, suf))
		}
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			probs = append(probs, fmt.Sprintf("counter %s does not end in _total", name))
		}
	case KindGauge, KindHistogram:
		if strings.HasSuffix(name, "_total") {
			probs = append(probs, fmt.Sprintf("%s %s must not end in _total (reserved for counters)", kind, name))
		}
	}
	return probs
}

// LintLabel checks one label name. The "le" label is reserved for histogram
// buckets and the "__"-prefixed space is reserved by Prometheus itself.
func LintLabel(label string) []string {
	var probs []string
	if !validLabelName(label) {
		probs = append(probs, fmt.Sprintf("invalid label name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", label))
		return probs
	}
	if strings.HasPrefix(label, "__") {
		probs = append(probs, fmt.Sprintf("label %s uses the reserved __ prefix", label))
	}
	if label == "le" {
		probs = append(probs, "label le is reserved for histogram buckets")
	}
	return probs
}

// checkInstrument enforces LintName/LintLabel at registration time; the
// constructors call it before touching the registry. An empty label means
// the instrument is unlabeled.
func checkInstrument(kind, name, label string) {
	if probs := LintName(kind, name); len(probs) > 0 {
		panic("obs: " + probs[0])
	}
	if label != "" {
		if probs := LintLabel(label); len(probs) > 0 {
			panic("obs: " + probs[0])
		}
	}
}

func validLabelName(label string) bool {
	if label == "" {
		return false
	}
	for i, r := range label {
		ok := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') ||
			(i > 0 && '0' <= r && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
