// Package obs is the repository's dependency-free telemetry layer:
// hierarchical spans with a bounded ring of completed records, fixed-bucket
// latency histograms rendered in Prometheus text exposition format, a Chrome
// trace-event exporter for job timelines, and a shared log/slog setup for the
// command-line binaries.
//
// The package deliberately has no third-party dependencies and no background
// goroutines. Metric instruments are cheap enough to leave in hot paths
// (an atomic add per observation); the process-wide Enabled gate exists so
// the bench suite can price exactly that cost.
package obs

import "sync/atomic"

// enabled gates metric observation and span recording process-wide.
// It defaults to on; the bench suite flips it to measure telemetry overhead.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns telemetry collection on or off process-wide and reports
// the previous state. With telemetry off, histogram/counter observations and
// span recording become no-ops (rendering still works and shows whatever was
// collected while enabled).
func SetEnabled(on bool) (prev bool) { return enabled.Swap(on) }

// Enabled reports whether telemetry collection is currently on.
func Enabled() bool { return enabled.Load() }
