package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog level. Accepted values
// are debug, info, warn and error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the shared slog logger the binaries use: text by default,
// JSON lines when jsonOut is set. It does not touch slog's process default;
// callers decide whether to slog.SetDefault it.
func NewLogger(w io.Writer, level slog.Level, jsonOut bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
