// Command promlint reads a Prometheus text exposition on stdin and applies
// the repo's conformance lint (HELP+TYPE before every sample, counters end
// in _total, histogram buckets monotone with a +Inf bucket matching _count).
// It exits non-zero and prints one line per problem when the exposition is
// not clean; CI pipes the daemon's /metrics through it.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read stdin:", err)
		os.Exit(2)
	}
	probs := obs.LintProm(string(data))
	for _, p := range probs {
		fmt.Fprintln(os.Stderr, "promlint:", p)
	}
	if len(probs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d bytes)\n", len(data))
}
