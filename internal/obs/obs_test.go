package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistryRenderIsLintClean(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_events_total", "Events seen.")
	c.Add(3)
	g := r.NewGauge("t_depth", "Queue depth.")
	g.Set(7)
	r.NewGaugeFunc("t_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.NewHistogram("t_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5) // overflow -> +Inf only
	hv := r.NewHistogramVec("t_route_seconds", "Route latency.", "route", []float64{0.01, 0.1})
	hv.With("jobs").Observe(0.02)
	hv.With("traces").Observe(0.002)
	cv := r.NewCounterVec("t_jobs_total", "Jobs by state.", "state")
	cv.With("done").Inc()
	cv.With("error").Add(2)

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if probs := LintProm(out); len(probs) != 0 {
		t.Fatalf("lint problems in rendered output:\n%s\n---\n%s", strings.Join(probs, "\n"), out)
	}
	for _, want := range []string{
		"# HELP t_events_total Events seen.",
		"# TYPE t_events_total counter",
		"t_events_total 3",
		`t_latency_seconds_bucket{le="+Inf"} 2`,
		`t_route_seconds_bucket{route="jobs",le="0.01"} 0`,
		`t_jobs_total{state="error"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := map[string]string{
		"no help/type":   "foo 1\n",
		"counter suffix": "# HELP x_bad x\n# TYPE x_bad counter\nx_bad 1\n",
		"non-monotone": "# HELP h_seconds h\n# TYPE h_seconds histogram\n" +
			`h_seconds_bucket{le="0.1"} 5` + "\n" +
			`h_seconds_bucket{le="1"} 3` + "\n" +
			`h_seconds_bucket{le="+Inf"} 5` + "\n" +
			"h_seconds_sum 1\nh_seconds_count 5\n",
		"missing +Inf": "# HELP h2_seconds h\n# TYPE h2_seconds histogram\n" +
			`h2_seconds_bucket{le="1"} 3` + "\n" +
			"h2_seconds_sum 1\nh2_seconds_count 3\n",
	}
	for name, text := range cases {
		if probs := LintProm(text); len(probs) == 0 {
			t.Errorf("%s: lint accepted bad exposition:\n%s", name, text)
		}
	}
}

func TestHistogramOverflowCountsOnlyInInf(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("o_seconds", "x", []float64{1})
	h.Observe(0.5)
	h.Observe(99)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `o_seconds_bucket{le="1"} 1`) {
		t.Errorf("finite bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `o_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket wrong:\n%s", out)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
}

func TestRecorderRingBoundsAndOrder(t *testing.T) {
	rec := NewRecorder(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		sp := rec.StartAt("s", base.Add(time.Duration(i)*time.Millisecond))
		sp.EndAt(base.Add(time.Duration(i)*time.Millisecond + time.Microsecond))
	}
	spans, dropped := rec.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Errorf("snapshot not oldest-first at %d", i)
		}
	}
}

func TestNilSpanSafety(t *testing.T) {
	var rec *Recorder
	sp := rec.Start("root")
	sp.SetAttr("k", "v")
	sp.SetTID(3)
	child := sp.Child("c")
	child.End()
	sp.Record("pre", time.Now(), time.Now())
	sp.End()
	if n := rec.Len(); n != 0 {
		t.Fatalf("nil recorder has %d spans", n)
	}
}

func TestSetEnabledGatesCollection(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.NewHistogram("g_seconds", "x", nil)
	h.Observe(1)
	c := r.NewCounter("g_total", "x")
	c.Inc()
	rec := NewRecorder(8)
	sp := rec.Start("s")
	sp.End()
	if h.Count() != 0 || c.Value() != 0 || rec.Len() != 0 {
		t.Fatalf("disabled telemetry still collected: hist=%d counter=%v spans=%d",
			h.Count(), c.Value(), rec.Len())
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := NewRecorder(64)
	base := time.Now()
	root := rec.StartAt("segment 0", base)
	root.SetTID(1)
	for i, stage := range []string{"decode", "fold", "execute", "stitch"} {
		st := base.Add(time.Duration(i) * time.Millisecond)
		root.Record(stage, st, st.Add(time.Millisecond))
	}
	root.SetAttr("epochs", "8")
	root.EndAt(base.Add(4 * time.Millisecond))

	spans, _ := rec.Snapshot()
	var b strings.Builder
	if err := ChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	lastTS := -1.0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("event ph = %v, want X", ev["ph"])
		}
		for _, k := range []string{"pid", "tid", "ts", "dur", "name"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event missing %s: %v", k, ev)
			}
		}
		ts := ev["ts"].(float64)
		if ts < lastTS {
			t.Errorf("ts not monotone: %v after %v", ts, lastTS)
		}
		lastTS = ts
	}
	// The root span sorts before its first child at equal ts (longer dur).
	if doc.TraceEvents[0]["name"] != "segment 0" {
		t.Errorf("first event = %v, want root span", doc.TraceEvents[0]["name"])
	}
	if args, ok := doc.TraceEvents[0]["args"].(map[string]any); !ok || args["epochs"] != "8" {
		t.Errorf("root span args = %v", doc.TraceEvents[0]["args"])
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "WARN": "WARN", "error": "ERROR", "": "INFO",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}
