package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintProm checks a Prometheus text exposition for the conformance rules the
// repo enforces: every sample must belong to a family that declared # HELP
// and # TYPE before its first sample, counters must end in _total, histogram
// bucket counts must be monotone in le with a +Inf bucket matching _count,
// and no family may be declared twice. It returns one message per problem,
// empty when the exposition is clean.
func LintProm(text string) []string {
	var probs []string
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}

	type bucketKey struct{ fam, labels string }
	buckets := map[bucketKey][]struct {
		le  float64
		val float64
		raw string
	}{}
	counts := map[bucketKey]float64{}

	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // other comments are legal
			}
			fam := fields[2]
			switch fields[1] {
			case "HELP":
				if helpSeen[fam] {
					probs = append(probs, fmt.Sprintf("line %d: duplicate HELP for %s", lineNo, fam))
				}
				helpSeen[fam] = true
			case "TYPE":
				if _, dup := typeSeen[fam]; dup {
					probs = append(probs, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, fam))
				}
				typ := ""
				if len(fields) >= 4 {
					typ = strings.TrimSpace(fields[3])
				}
				typeSeen[fam] = typ
				switch typ {
				case KindCounter, KindGauge, KindHistogram:
					// Same static name rules the registry constructors and
					// the ir-vet obsconst analyzer enforce (rules.go).
					for _, p := range LintName(typ, fam) {
						probs = append(probs, fmt.Sprintf("line %d: %s", lineNo, p))
					}
				}
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.IndexByte(line[i:], '}')
			if j < 0 {
				probs = append(probs, fmt.Sprintf("line %d: unterminated label set", lineNo))
				continue
			}
			labels = line[i+1 : i+j]
			line = name + line[i+j+1:]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, name))
		valStr := strings.Fields(rest)
		if len(valStr) == 0 {
			probs = append(probs, fmt.Sprintf("line %d: sample %s has no value", lineNo, name))
			continue
		}
		val, err := strconv.ParseFloat(valStr[0], 64)
		if err != nil {
			probs = append(probs, fmt.Sprintf("line %d: sample %s has bad value %q", lineNo, name, valStr[0]))
			continue
		}

		fam, sampleKind := familyOf(name, typeSeen)
		if !helpSeen[fam] || typeSeen[fam] == "" {
			probs = append(probs, fmt.Sprintf("line %d: sample %s not preceded by both HELP and TYPE for %s", lineNo, name, fam))
			continue
		}
		typ := typeSeen[fam]
		if typ == "histogram" && sampleKind == "" {
			probs = append(probs, fmt.Sprintf("line %d: histogram %s has stray sample %s", lineNo, fam, name))
		}
		if typ == "histogram" {
			key := bucketKey{fam, stripLE(labels)}
			switch sampleKind {
			case "bucket":
				le, ok := leOf(labels)
				if !ok {
					probs = append(probs, fmt.Sprintf("line %d: %s_bucket without le label", lineNo, fam))
					continue
				}
				buckets[key] = append(buckets[key], struct {
					le  float64
					val float64
					raw string
				}{le, val, name})
			case "count":
				counts[key] = val
			}
		}
	}

	// Histogram shape checks, deterministic order.
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fam != keys[j].fam {
			return keys[i].fam < keys[j].fam
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		bs := buckets[k]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := -1.0
		hasInf := false
		for _, b := range bs {
			if b.val < last {
				probs = append(probs, fmt.Sprintf("%s{%s}: bucket counts not monotone in le", k.fam, k.labels))
				break
			}
			last = b.val
			if b.le > 1e308 { // +Inf parsed
				hasInf = true
				if c, ok := counts[k]; ok && c != b.val {
					probs = append(probs, fmt.Sprintf("%s{%s}: +Inf bucket %v != _count %v", k.fam, k.labels, b.val, c))
				}
			}
		}
		if !hasInf {
			probs = append(probs, fmt.Sprintf("%s{%s}: missing le=\"+Inf\" bucket", k.fam, k.labels))
		}
	}
	return probs
}

// familyOf resolves a sample name to its metric family. Histogram and
// summary samples use the _bucket/_sum/_count suffixes of their family name.
func familyOf(name string, types map[string]string) (fam, kind string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base, strings.TrimPrefix(suf, "_")
			}
		}
	}
	return name, ""
}

// stripLE removes the le label from a label string so bucket series of one
// histogram child group under the same key.
func stripLE(labels string) string {
	var out []string
	for _, p := range splitLabels(labels) {
		if !strings.HasPrefix(p, "le=") {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// leOf extracts the le label value as a float (+Inf allowed).
func leOf(labels string) (float64, bool) {
	for _, p := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(p, "le="); ok {
			v = strings.Trim(v, `"`)
			if v == "+Inf" {
				return math.Inf(1), true
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, false
			}
			return f, true
		}
	}
	return 0, false
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(labels string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		parts = append(parts, labels[start:])
	}
	return parts
}
