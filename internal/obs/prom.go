package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout, in seconds. It spans
// 100µs..10s, which covers everything from a cached frame fetch to a long
// analyze job.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metric is anything a Registry can render. Families render themselves,
// HELP and TYPE lines included, so every sample in the exposition is
// guaranteed to sit under its own header.
type metric interface {
	metricName() string
	renderTo(b *strings.Builder)
}

// Registry is a collection of metric families rendered together in
// Prometheus text exposition format (version 0.0.4). Registration panics on
// duplicate or malformed names: both are programmer errors that should fail
// at startup, not at scrape time.
type Registry struct {
	mu   sync.Mutex
	fams map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Library packages (trace, sched,
// core, flight) register their histograms here at init time; the daemon
// renders it after its own registry on /metrics.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(name string, m metric) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.fams[name] = m
}

// Render writes every registered family in name order. Each family carries
// its own # HELP and # TYPE lines.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range ms {
		m.renderTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func helpLine(b *strings.Builder, name, help, typ string) {
	esc := strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)
	b.WriteString("# HELP " + name + " " + esc + "\n")
	b.WriteString("# TYPE " + name + " " + typ + "\n")
}

func escLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. Counter names must end in
// _total by convention; registration enforces it.
type Counter struct {
	nm, help string
	val      atomicFloat
}

// NewCounter registers and returns a counter. The name must end in _total.
func (r *Registry) NewCounter(name, help string) *Counter {
	checkInstrument(KindCounter, name, "")
	c := &Counter{nm: name, help: help}
	r.register(name, c)
	return c
}

// Add increments the counter. Negative deltas are ignored. No-op while
// telemetry is disabled.
func (c *Counter) Add(v float64) {
	if v < 0 || !enabled.Load() {
		return
	}
	c.val.add(v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value. It exists for mirroring an external
// cumulative counter (e.g. a scheduler snapshot) at scrape time and must
// never be mixed with Add on the same counter.
func (c *Counter) Set(v float64) { c.val.set(v) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.val.load() }

func (c *Counter) metricName() string { return c.nm }

func (c *Counter) renderTo(b *strings.Builder) {
	helpLine(b, c.nm, c.help, "counter")
	b.WriteString(c.nm + " " + fmtFloat(c.val.load()) + "\n")
}

// Gauge is a value that can go up and down.
type Gauge struct {
	nm, help string
	val      atomicFloat
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	checkInstrument(KindGauge, name, "")
	g := &Gauge{nm: name, help: help}
	r.register(name, g)
	return g
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.val.set(v) }

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) { g.val.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.load() }

func (g *Gauge) metricName() string { return g.nm }

func (g *Gauge) renderTo(b *strings.Builder) {
	helpLine(b, g.nm, g.help, "gauge")
	b.WriteString(g.nm + " " + fmtFloat(g.val.load()) + "\n")
}

// GaugeFunc is a gauge whose value is computed at render time.
type GaugeFunc struct {
	nm, help string
	fn       func() float64
}

// NewGaugeFunc registers a gauge evaluated lazily on every scrape.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	checkInstrument(KindGauge, name, "")
	g := &GaugeFunc{nm: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

func (g *GaugeFunc) metricName() string { return g.nm }

func (g *GaugeFunc) renderTo(b *strings.Builder) {
	helpLine(b, g.nm, g.help, "gauge")
	b.WriteString(g.nm + " " + fmtFloat(g.fn()) + "\n")
}

// Histogram is a fixed-bucket latency histogram. Observations are atomic
// adds; rendering produces the cumulative _bucket/_sum/_count series.
type Histogram struct {
	nm, help string
	bounds   []float64 // sorted upper bounds, +Inf implicit
	counts   []atomic.Uint64
	sum      atomicFloat
	count    atomic.Uint64
	labels   string // pre-rendered label set ("" or `{k="v"}`), for vec children
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (seconds for latency series). Nil buckets mean DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	checkInstrument(KindHistogram, name, "")
	h := newHistogram(name, help, buckets, "")
	r.register(name, h)
	return h
}

func newHistogram(name, help string, buckets []float64, labels string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("obs: duplicate histogram bucket in " + name)
		}
	}
	return &Histogram{
		nm: name, help: help, bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)),
		labels: labels,
	}
}

// Observe records one value. No-op while telemetry is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// First bucket whose upper bound contains v; +Inf overflow counts only
	// in sum/count and surfaces via the implicit +Inf bucket at render.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) metricName() string { return h.nm }

func (h *Histogram) renderTo(b *strings.Builder) {
	helpLine(b, h.nm, h.help, "histogram")
	h.renderSamples(b)
}

func (h *Histogram) renderSamples(b *strings.Builder) {
	inner := strings.TrimSuffix(strings.TrimPrefix(h.labels, "{"), "}")
	sep := ""
	if inner != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", h.nm, inner, sep, fmtFloat(ub), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.nm, inner, sep, h.count.Load())
	b.WriteString(h.nm + "_sum" + h.labels + " " + fmtFloat(h.sum.load()) + "\n")
	fmt.Fprintf(b, "%s_count%s %d\n", h.nm, h.labels, h.count.Load())
}

// vec is the shared machinery for single-label metric families.
type vec[T metric] struct {
	nm, help, label string
	mu              sync.Mutex
	children        map[string]T
	mk              func(labels string) T
}

func (v *vec[T]) child(value string) T {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = v.mk(`{` + v.label + `="` + escLabel(value) + `"}`)
		v.children[value] = c
	}
	return c
}

func (v *vec[T]) sortedValues() []string {
	vals := make([]string, 0, len(v.children))
	for lv := range v.children {
		vals = append(vals, lv)
	}
	sort.Strings(vals)
	return vals
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	vec[*labeledCounter]
}

type labeledCounter struct {
	Counter
	labels string
}

func (c *labeledCounter) renderTo(b *strings.Builder) {
	b.WriteString(c.nm + c.labels + " " + fmtFloat(c.val.load()) + "\n")
}

// NewCounterVec registers a counter family with one label dimension.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	checkInstrument(KindCounter, name, label)
	cv := &CounterVec{vec[*labeledCounter]{
		nm: name, help: help, label: label,
		children: make(map[string]*labeledCounter),
	}}
	cv.mk = func(labels string) *labeledCounter {
		return &labeledCounter{Counter: Counter{nm: name, help: help}, labels: labels}
	}
	r.register(name, cv)
	return cv
}

// With returns the child counter for the given label value.
func (cv *CounterVec) With(value string) *Counter { return &cv.child(value).Counter }

func (cv *CounterVec) metricName() string { return cv.nm }

func (cv *CounterVec) renderTo(b *strings.Builder) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	helpLine(b, cv.nm, cv.help, "counter")
	for _, lv := range cv.sortedValues() {
		cv.children[lv].renderTo(b)
	}
}

// GaugeVec is a gauge family partitioned by one label.
type GaugeVec struct {
	vec[*labeledGauge]
}

type labeledGauge struct {
	Gauge
	labels string
}

func (g *labeledGauge) renderTo(b *strings.Builder) {
	b.WriteString(g.nm + g.labels + " " + fmtFloat(g.val.load()) + "\n")
}

// NewGaugeVec registers a gauge family with one label dimension.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	checkInstrument(KindGauge, name, label)
	gv := &GaugeVec{vec[*labeledGauge]{
		nm: name, help: help, label: label,
		children: make(map[string]*labeledGauge),
	}}
	gv.mk = func(labels string) *labeledGauge {
		return &labeledGauge{Gauge: Gauge{nm: name, help: help}, labels: labels}
	}
	r.register(name, gv)
	return gv
}

// With returns the child gauge for the given label value.
func (gv *GaugeVec) With(value string) *Gauge { return &gv.child(value).Gauge }

// Reset drops all children; the next render omits stale label values.
func (gv *GaugeVec) Reset() {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	gv.children = make(map[string]*labeledGauge)
}

func (gv *GaugeVec) metricName() string { return gv.nm }

func (gv *GaugeVec) renderTo(b *strings.Builder) {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	helpLine(b, gv.nm, gv.help, "gauge")
	for _, lv := range gv.sortedValues() {
		gv.children[lv].renderTo(b)
	}
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	vec[*Histogram]
}

// NewHistogramVec registers a histogram family with one label dimension.
// Nil buckets mean DefBuckets.
func (r *Registry) NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	checkInstrument(KindHistogram, name, label)
	hv := &HistogramVec{vec[*Histogram]{
		nm: name, help: help, label: label,
		children: make(map[string]*Histogram),
	}}
	hv.mk = func(labels string) *Histogram {
		return newHistogram(name, help, buckets, labels)
	}
	r.register(name, hv)
	return hv
}

// With returns the child histogram for the given label value.
func (hv *HistogramVec) With(value string) *Histogram { return hv.child(value) }

func (hv *HistogramVec) metricName() string { return hv.nm }

func (hv *HistogramVec) renderTo(b *strings.Builder) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	helpLine(b, hv.nm, hv.help, "histogram")
	for _, lv := range hv.sortedValues() {
		hv.children[lv].renderSamples(b)
	}
}
