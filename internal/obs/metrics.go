package obs

// Standard instrument catalog. Library packages observe into these; the
// daemon's /metrics renders Default() after its own registry. Keeping the
// declarations in one place doubles as the metric inventory for
// docs/OBSERVABILITY.md.
var (
	// Scheduler: queue wait (enqueue -> dispatch) and run time
	// (dispatch -> finish) per job kind.
	SchedQueueWait = Default().NewHistogramVec("ir_sched_queue_wait_seconds",
		"Time jobs spend queued before a worker picks them up.", "kind", nil)
	SchedRun = Default().NewHistogramVec("ir_sched_run_seconds",
		"Wall time jobs spend executing on a worker.", "kind", nil)

	// Trace store and random-access handles.
	TraceHandleOpen = Default().NewHistogram("ir_trace_handle_open_seconds",
		"Time to open a random-access trace handle (index footer read + validation).", nil)
	TraceFrameFetch = Default().NewHistogramVec("ir_trace_frame_fetch_seconds",
		"Cache-miss frame fetch latency (pread + CRC + decode) by frame kind.", "kind", nil)
	TraceInflate = Default().NewHistogram("ir_trace_inflate_seconds",
		"Time to inflate a compressed frame payload.", nil)
	TraceCkptFold = Default().NewHistogram("ir_trace_checkpoint_fold_seconds",
		"Time to materialize a checkpoint by folding deltas from the nearest keyframe.", nil)
	StoreGC = Default().NewHistogram("ir_store_gc_seconds",
		"Duration of store retention GC passes.", nil)

	// Flight recorder.
	FlightRotate = Default().NewHistogram("ir_flight_rotate_seconds",
		"Duration of flight-recorder ring rotations (suffix rewrite + rename).", nil)
	FlightSpill = Default().NewHistogram("ir_flight_spill_seconds",
		"Duration of flight-recorder spills into a trace store.", nil)

	// Recording runtime epoch machinery.
	CoreEpoch = Default().NewHistogram("ir_core_epoch_seconds",
		"Recorded epoch wall time, epoch begin to quiescent boundary.", nil)
	CoreQuiescence = Default().NewHistogram("ir_core_quiescence_wait_seconds",
		"Time the coordinator waits for application threads to quiesce at an epoch boundary.", nil)
	CoreRollbacks = Default().NewCounter("ir_core_rollbacks_total",
		"In-situ replay rollbacks (re-executions after a divergent replay attempt).")
)
