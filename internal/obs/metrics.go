package obs

// Standard instrument catalog. Library packages observe into these; the
// daemon's /metrics renders Default() after its own registry. Keeping the
// declarations in one place doubles as the metric inventory for
// docs/OBSERVABILITY.md.
//
// The M* constants below are the catalog proper: every metric family name
// in the repo — the library instruments declared in this file and the
// ir_served_* families the daemon registers in internal/server — must be
// spelled as one of these constants at its registration site. The ir-vet
// `obsconst` analyzer enforces that statically (the name argument of every
// Registry.New* call must be a compile-time constant, a member of this
// catalog, and clean under the LintName/LintLabel rules in rules.go), which
// makes this block the single source of truth for the exposition surface.

// Library instrument names.
const (
	MSchedQueueWait = "ir_sched_queue_wait_seconds"
	MSchedRun       = "ir_sched_run_seconds"

	MTraceHandleOpen = "ir_trace_handle_open_seconds"
	MTraceFrameFetch = "ir_trace_frame_fetch_seconds"
	MTraceInflate    = "ir_trace_inflate_seconds"
	MTraceCkptFold   = "ir_trace_checkpoint_fold_seconds"
	MStoreGC         = "ir_store_gc_seconds"

	MFlightRotate = "ir_flight_rotate_seconds"
	MFlightSpill  = "ir_flight_spill_seconds"

	MCoreEpoch      = "ir_core_epoch_seconds"
	MCoreQuiescence = "ir_core_quiescence_wait_seconds"
	MCoreRollbacks  = "ir_core_rollbacks_total"

	MAnalysisSegment   = "ir_analysis_segment_seconds"
	MAnalysisStateFold = "ir_analysis_state_fold_seconds"
	MAnalysisMerge     = "ir_analysis_merge_seconds"
)

// Daemon (ir-served) instrument names, registered by internal/server.
const (
	MServedHTTPLatency  = "ir_served_http_request_seconds"
	MServedHTTPRequests = "ir_served_http_requests_total"

	MServedQueueDepth     = "ir_served_queue_depth"
	MServedQueueLimit     = "ir_served_queue_limit"
	MServedWorkers        = "ir_served_workers"
	MServedJobsRunning    = "ir_served_jobs_running"
	MServedJobsTotal      = "ir_served_jobs_total"
	MServedJobsSubmitted  = "ir_served_jobs_submitted_total"
	MServedJobsRejected   = "ir_served_jobs_rejected_total"
	MServedEventsReplayed = "ir_served_events_replayed_total"
	MServedEventsPerSec   = "ir_served_events_per_sec"

	MServedCacheHits      = "ir_served_store_cache_hits_total"
	MServedCacheMisses    = "ir_served_store_cache_misses_total"
	MServedCacheEvictions = "ir_served_store_cache_evictions_total"
	MServedCacheBytes     = "ir_served_store_cache_bytes"
	MServedCacheLimit     = "ir_served_store_cache_limit_bytes"
	MServedCacheHitRate   = "ir_served_store_cache_hit_rate"
	MServedCachedFrames   = "ir_served_store_cached_frames"

	MServedStoreBytes    = "ir_served_store_bytes"
	MServedStoreTraces   = "ir_served_store_traces"
	MServedTracesByTier  = "ir_served_store_traces_by_tier"
	MServedPinnedTraces  = "ir_served_store_pinned_traces"
	MServedGCRuns        = "ir_served_gc_runs_total"
	MServedGCReclaimed   = "ir_served_gc_reclaimed_bytes_total"
	MServedUptimeSeconds = "ir_served_uptime_seconds"
)

var (
	// Scheduler: queue wait (enqueue -> dispatch) and run time
	// (dispatch -> finish) per job kind.
	SchedQueueWait = Default().NewHistogramVec(MSchedQueueWait,
		"Time jobs spend queued before a worker picks them up.", "kind", nil)
	SchedRun = Default().NewHistogramVec(MSchedRun,
		"Wall time jobs spend executing on a worker.", "kind", nil)

	// Trace store and random-access handles.
	TraceHandleOpen = Default().NewHistogram(MTraceHandleOpen,
		"Time to open a random-access trace handle (index footer read + validation).", nil)
	TraceFrameFetch = Default().NewHistogramVec(MTraceFrameFetch,
		"Cache-miss frame fetch latency (pread + CRC + decode) by frame kind.", "kind", nil)
	TraceInflate = Default().NewHistogram(MTraceInflate,
		"Time to inflate a compressed frame payload.", nil)
	TraceCkptFold = Default().NewHistogram(MTraceCkptFold,
		"Time to materialize a checkpoint by folding deltas from the nearest keyframe.", nil)
	StoreGC = Default().NewHistogram(MStoreGC,
		"Duration of store retention GC passes.", nil)

	// Flight recorder.
	FlightRotate = Default().NewHistogram(MFlightRotate,
		"Duration of flight-recorder ring rotations (suffix rewrite + rename).", nil)
	FlightSpill = Default().NewHistogram(MFlightSpill,
		"Duration of flight-recorder spills into a trace store.", nil)

	// Recording runtime epoch machinery.
	CoreEpoch = Default().NewHistogram(MCoreEpoch,
		"Recorded epoch wall time, epoch begin to quiescent boundary.", nil)
	CoreQuiescence = Default().NewHistogram(MCoreQuiescence,
		"Time the coordinator waits for application threads to quiesce at an epoch boundary.", nil)
	CoreRollbacks = Default().NewCounter(MCoreRollbacks,
		"In-situ replay rollbacks (re-executions after a divergent replay attempt).")

	// Segment-parallel analysis (trace.AnalyzeSegments).
	AnalysisSegment = Default().NewHistogram(MAnalysisSegment,
		"Wall time of one analysis segment: checkpoint restore, replay, and tape capture.", nil)
	AnalysisStateFold = Default().NewHistogram(MAnalysisStateFold,
		"Time to round-trip the analyzer state chain (encode + decode) at a segment boundary.", nil)
	AnalysisMerge = Default().NewHistogram(MAnalysisMerge,
		"Time to fold one segment's observation tape into the analyzer chain.", nil)
)
