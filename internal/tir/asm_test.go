package tir

import (
	"strings"
	"testing"
)

const asmCountdown = `
; sum 1..n via a loop, called from main
global seed 8 "\x05\x00\x00\x00\x00\x00\x00\x00"

func sum/1 regs=4 {
  consti r1, 0          ; acc
  consti r2, 1
loop:
  brz r0, @done
  add r1, r1, r0
  sub r0, r0, r2
  jmp @loop
done:
  ret r1
}

func main/0 regs=2 {
  globaladdr r0, seed
  load64 r0, [r0+0]
  call r1, sum(r0+1)
  ret r1
}

entry main
`

func TestAssembleCountdown(t *testing.T) {
	m, err := Assemble(asmCountdown)
	if err != nil {
		t.Fatal(err)
	}
	if m.FuncIndex("main") < 0 || m.FuncIndex("sum") < 0 {
		t.Fatal("functions missing")
	}
	if m.Entry != m.FuncIndex("main") {
		t.Fatalf("entry = %d", m.Entry)
	}
	g := m.Globals[0]
	if g.Name != "seed" || g.Size != 8 || g.Init[0] != 5 {
		t.Fatalf("global = %+v", g)
	}
}

func TestAssembleIntrinsicsAndSyscalls(t *testing.T) {
	src := `
func main/0 regs=3 frame=16 {
  consti r0, 64
  intrin r1, malloc(r0+1)
  store64 [r1+0], r0
  frameaddr r2, fp+8
  store64 [r2+0], r0
  syscall r2, 1()
  intrin _, free(r1+1)
  ret r2
}
entry main
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	if f.FrameSize != 16 {
		t.Fatalf("frame = %d", f.FrameSize)
	}
	var sawMalloc, sawFree, sawSyscall bool
	for _, in := range f.Code {
		switch {
		case in.Op == Intrin && in.Imm == IntrinMalloc:
			sawMalloc = true
		case in.Op == Intrin && in.Imm == IntrinFree:
			if in.A != -1 {
				t.Fatalf("free result must be discarded, got A=%d", in.A)
			}
			sawFree = true
		case in.Op == Syscall:
			sawSyscall = true
		}
	}
	if !sawMalloc || !sawFree || !sawSyscall {
		t.Fatalf("missing instructions: malloc=%v free=%v syscall=%v", sawMalloc, sawFree, sawSyscall)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "func main/0 regs=1 {\n frobnicate r0\n ret r0\n}\nentry main",
		"bad register":     "func main/0 regs=1 {\n consti r9, 1\n ret r9\n}\nentry main",
		"unbound label":    "func main/0 regs=1 {\n jmp @nowhere\n ret r0\n}\nentry main",
		"unknown global":   "func main/0 regs=1 {\n globaladdr r0, nope\n ret r0\n}\nentry main",
		"unknown function": "func main/0 regs=1 {\n call r0, nope(r0+1)\n ret r0\n}\nentry main",
		"unknown intrin":   "func main/0 regs=1 {\n intrin r0, zap(r0+1)\n ret r0\n}\nentry main",
		"no entry":         "func main/0 regs=1 {\n ret r0\n}",
		"global in body":   "func main/0 regs=1 {\nglobal x 8\n ret r0\n}\nentry main",
		"nested func":      "func main/0 regs=1 {\nfunc f/0 regs=1 {\n}\n}\nentry main",
		"stray statement":  "consti r0, 1",
		"unterminated":     "func main/0 regs=1 {\n ret r0",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestAssembleCommentsAndWhitespace(t *testing.T) {
	src := `
; leading comment

func main/0 regs=1 {
  consti r0, 7   ; trailing comment
  ret r0
}
entry main
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs[0].Code) != 2 {
		t.Fatalf("code = %d instrs", len(m.Funcs[0].Code))
	}
}

// Round trip: the disassembler's mnemonics for the ops the assembler accepts
// stay in sync (a drift guard between asm.go and disasm.go).
func TestAssemblerDisassemblerAgreeOnMnemonics(t *testing.T) {
	m := MustAssemble(asmCountdown)
	text := Disasm(m)
	for _, want := range []string{"consti", "add", "sub", "brz", "jmp", "ret", "globaladdr", "load64", "call"} {
		if !strings.Contains(text, want) {
			t.Errorf("disasm missing %q", want)
		}
	}
}

func TestAssembleForwardCall(t *testing.T) {
	src := `
func main/0 regs=2 {
  consti r0, 3
  call r1, later(r0+1)
  ret r1
}
func later/1 regs=1 {
  ret r0
}
entry main
`
	m, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
}
