package tir

import "fmt"

// ModuleBuilder assembles a Module incrementally. Function bodies are built
// through FuncBuilder, which provides virtual registers and forward-reference
// labels so that workloads can be synthesized programmatically.
type ModuleBuilder struct {
	mod     *Module
	nameSet map[string]bool
}

// NewModuleBuilder returns an empty builder.
func NewModuleBuilder() *ModuleBuilder {
	return &ModuleBuilder{mod: &Module{Entry: -1}, nameSet: make(map[string]bool)}
}

// Global declares a zero-initialized global of the given size and returns its
// index.
func (mb *ModuleBuilder) Global(name string, size int64) int {
	return mb.GlobalInit(name, size, nil)
}

// GlobalInit declares a global with initial contents and returns its index.
func (mb *ModuleBuilder) GlobalInit(name string, size int64, init []byte) int {
	if mb.nameSet["g:"+name] {
		panic(fmt.Sprintf("tir: duplicate global %q", name))
	}
	mb.nameSet["g:"+name] = true
	if int64(len(init)) > size {
		panic(fmt.Sprintf("tir: global %q init larger than size", name))
	}
	mb.mod.Globals = append(mb.mod.Globals, Global{Name: name, Size: size, Init: init})
	return len(mb.mod.Globals) - 1
}

// Func starts a new function with the given number of parameters and returns
// its builder. Parameters occupy registers 0..numParams-1.
func (mb *ModuleBuilder) Func(name string, numParams int) *FuncBuilder {
	if mb.nameSet["f:"+name] {
		panic(fmt.Sprintf("tir: duplicate function %q", name))
	}
	mb.nameSet["f:"+name] = true
	f := &Function{Name: name, NumParams: numParams, NumRegs: numParams}
	mb.mod.Funcs = append(mb.mod.Funcs, f)
	return &FuncBuilder{mb: mb, fn: f, index: len(mb.mod.Funcs) - 1}
}

// Declare reserves a function index before its body exists, allowing mutual
// recursion and thread entry points referenced before definition.
func (mb *ModuleBuilder) Declare(name string, numParams int) int {
	fb := mb.Func(name, numParams)
	return fb.index
}

// FuncBuilderFor returns a builder appending to a previously Declared
// function.
func (mb *ModuleBuilder) FuncBuilderFor(index int) *FuncBuilder {
	return &FuncBuilder{mb: mb, fn: mb.mod.Funcs[index], index: index}
}

// SetEntry marks the named function as the program entry point.
func (mb *ModuleBuilder) SetEntry(name string) {
	idx := mb.mod.FuncIndex(name)
	if idx < 0 {
		panic(fmt.Sprintf("tir: entry function %q not defined", name))
	}
	mb.mod.Entry = idx
}

// Build validates and returns the finished module.
func (mb *ModuleBuilder) Build() (*Module, error) {
	if err := Validate(mb.mod); err != nil {
		return nil, err
	}
	return mb.mod, nil
}

// MustBuild is Build that panics on error; intended for tests and statically
// known-correct workload generators.
func (mb *ModuleBuilder) MustBuild() *Module {
	m, err := mb.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// Reg is a virtual register index within one function.
type Reg = int32

// Label identifies a jump target that may be bound after it is referenced.
type Label int

// FuncBuilder builds one function's body.
type FuncBuilder struct {
	mb    *ModuleBuilder
	fn    *Function
	index int

	labels  []int // label -> pc, -1 while unbound
	patches []patch
}

type patch struct {
	pc    int
	label Label
}

// Index returns the function's index in the module.
func (fb *FuncBuilder) Index() int { return fb.index }

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.fn.NumRegs)
	fb.fn.NumRegs++
	return r
}

// Param returns the register holding parameter i.
func (fb *FuncBuilder) Param(i int) Reg {
	if i >= fb.fn.NumParams {
		panic("tir: param index out of range")
	}
	return Reg(i)
}

// SetFrameSize reserves bytes of virtual stack for this function.
func (fb *FuncBuilder) SetFrameSize(n int64) { fb.fn.FrameSize = n }

// NewLabel creates an unbound label.
func (fb *FuncBuilder) NewLabel() Label {
	fb.labels = append(fb.labels, -1)
	return Label(len(fb.labels) - 1)
}

// Bind attaches a label to the next emitted instruction.
func (fb *FuncBuilder) Bind(l Label) {
	if fb.labels[l] != -1 {
		panic("tir: label bound twice")
	}
	fb.labels[l] = len(fb.fn.Code)
}

// Emit appends a raw instruction and returns its pc.
func (fb *FuncBuilder) Emit(in Instr) int {
	fb.fn.Code = append(fb.fn.Code, in)
	return len(fb.fn.Code) - 1
}

// --- convenience emitters ---

// ConstI sets dst to an integer constant.
func (fb *FuncBuilder) ConstI(dst Reg, v int64) {
	fb.Emit(Instr{Op: ConstI, A: dst, Imm: v})
}

// Mov copies src into dst.
func (fb *FuncBuilder) Mov(dst, src Reg) { fb.Emit(Instr{Op: Mov, A: dst, B: src}) }

// Bin emits a three-register arithmetic or comparison instruction.
func (fb *FuncBuilder) Bin(op Op, dst, a, b Reg) {
	fb.Emit(Instr{Op: op, A: dst, B: a, C: b})
}

// AddI emits dst = a + imm.
func (fb *FuncBuilder) AddI(dst, a Reg, imm int64) {
	fb.Emit(Instr{Op: AddI, A: dst, B: a, Imm: imm})
}

// Jmp emits an unconditional jump to l.
func (fb *FuncBuilder) Jmp(l Label) {
	pc := fb.Emit(Instr{Op: Jmp})
	fb.patches = append(fb.patches, patch{pc, l})
}

// Br jumps to l when cond is nonzero.
func (fb *FuncBuilder) Br(cond Reg, l Label) {
	pc := fb.Emit(Instr{Op: Br, A: cond})
	fb.patches = append(fb.patches, patch{pc, l})
}

// Brz jumps to l when cond is zero.
func (fb *FuncBuilder) Brz(cond Reg, l Label) {
	pc := fb.Emit(Instr{Op: Brz, A: cond})
	fb.patches = append(fb.patches, patch{pc, l})
}

// Call emits a direct call; dst < 0 discards the result. args must be
// contiguous starting at args[0]; the builder copies them into a fresh
// contiguous window when they are not.
func (fb *FuncBuilder) Call(dst Reg, fn int, args ...Reg) {
	base := fb.contiguous(args)
	fb.Emit(Instr{Op: Call, A: dst, B: base, C: int32(len(args)), Imm: int64(fn)})
}

// Ret returns v; pass -1 to return zero.
func (fb *FuncBuilder) Ret(v Reg) { fb.Emit(Instr{Op: Ret, A: v}) }

// Load64 emits dst = mem[addr+off].
func (fb *FuncBuilder) Load64(dst, addr Reg, off int64) {
	fb.Emit(Instr{Op: Load64, A: dst, B: addr, Imm: off})
}

// Store64 emits mem[addr+off] = src.
func (fb *FuncBuilder) Store64(src, addr Reg, off int64) {
	fb.Emit(Instr{Op: Store64, A: src, B: addr, Imm: off})
}

// Load8 emits dst = byte at mem[addr+off].
func (fb *FuncBuilder) Load8(dst, addr Reg, off int64) {
	fb.Emit(Instr{Op: Load8, A: dst, B: addr, Imm: off})
}

// Store8 emits byte store of src to mem[addr+off].
func (fb *FuncBuilder) Store8(src, addr Reg, off int64) {
	fb.Emit(Instr{Op: Store8, A: src, B: addr, Imm: off})
}

// FrameAddr sets dst to the frame base plus off.
func (fb *FuncBuilder) FrameAddr(dst Reg, off int64) {
	fb.Emit(Instr{Op: FrameAddr, A: dst, Imm: off})
}

// GlobalAddr sets dst to the address of global gi.
func (fb *FuncBuilder) GlobalAddr(dst Reg, gi int) {
	fb.Emit(Instr{Op: GlobalAddr, A: dst, Imm: int64(gi)})
}

// Syscall emits dst = syscall(num, args...).
func (fb *FuncBuilder) Syscall(dst Reg, num int64, args ...Reg) {
	base := fb.contiguous(args)
	fb.Emit(Instr{Op: Syscall, A: dst, B: base, C: int32(len(args)), Imm: num})
}

// Intrin emits dst = intrinsic(id, args...).
func (fb *FuncBuilder) Intrin(dst Reg, id int64, args ...Reg) {
	base := fb.contiguous(args)
	fb.Emit(Instr{Op: Intrin, A: dst, B: base, C: int32(len(args)), Imm: id})
}

// Probe emits an instrumentation probe carrying regs[v] (v may be -1).
func (fb *FuncBuilder) Probe(id int64, v Reg) {
	fb.Emit(Instr{Op: Probe, A: v, Imm: id})
}

// contiguous returns the base register of args, copying into fresh registers
// when the caller's registers are not already a contiguous window.
func (fb *FuncBuilder) contiguous(args []Reg) int32 {
	if len(args) == 0 {
		return 0
	}
	ok := true
	for i := 1; i < len(args); i++ {
		if args[i] != args[0]+Reg(i) {
			ok = false
			break
		}
	}
	if ok {
		return args[0]
	}
	base := fb.NewReg()
	for i := 1; i < len(args); i++ {
		fb.NewReg()
	}
	for i, a := range args {
		fb.Mov(base+Reg(i), a)
	}
	return base
}

// Seal resolves labels. It must be called exactly once per function body.
func (fb *FuncBuilder) Seal() {
	for _, p := range fb.patches {
		target := fb.labels[p.label]
		if target == -1 {
			panic(fmt.Sprintf("tir: unbound label in %s", fb.fn.Name))
		}
		fb.fn.Code[p.pc].Imm = int64(target)
	}
	fb.patches = nil
}
