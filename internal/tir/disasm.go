package tir

import (
	"fmt"
	"strings"
)

// DisasmInstr renders one instruction as assembler-like text.
func DisasmInstr(m *Module, in Instr) string {
	reg := func(r int32) string {
		if r < 0 {
			return "_"
		}
		return fmt.Sprintf("r%d", r)
	}
	switch in.Op {
	case Nop:
		return "nop"
	case ConstI:
		return fmt.Sprintf("consti %s, %d", reg(in.A), in.Imm)
	case Mov, Neg, Not, FNeg, FSqrt, ItoF, FtoI:
		return fmt.Sprintf("%s %s, %s", in.Op, reg(in.A), reg(in.B))
	case AddI, MulI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, reg(in.A), reg(in.B), in.Imm)
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sar,
		FAdd, FSub, FMul, FDiv, Eq, Ne, LtS, LeS, LtU, FLt, FLe:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, reg(in.A), reg(in.B), reg(in.C))
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case Br:
		return fmt.Sprintf("br %s, @%d", reg(in.A), in.Imm)
	case Brz:
		return fmt.Sprintf("brz %s, @%d", reg(in.A), in.Imm)
	case Call:
		name := fmt.Sprintf("f%d", in.Imm)
		if m != nil && in.Imm >= 0 && in.Imm < int64(len(m.Funcs)) {
			name = m.Funcs[in.Imm].Name
		}
		return fmt.Sprintf("call %s, %s(%s+%d)", reg(in.A), name, reg(in.B), in.C)
	case Ret:
		return fmt.Sprintf("ret %s", reg(in.A))
	case Load8, Load64:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, reg(in.A), reg(in.B), in.Imm)
	case Store8, Store64:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, reg(in.B), in.Imm, reg(in.A))
	case FrameAddr:
		return fmt.Sprintf("frameaddr %s, fp+%d", reg(in.A), in.Imm)
	case GlobalAddr:
		name := fmt.Sprintf("g%d", in.Imm)
		if m != nil && in.Imm >= 0 && in.Imm < int64(len(m.Globals)) {
			name = m.Globals[in.Imm].Name
		}
		return fmt.Sprintf("globaladdr %s, %s", reg(in.A), name)
	case Syscall:
		return fmt.Sprintf("syscall %s, %d(%s+%d)", reg(in.A), in.Imm, reg(in.B), in.C)
	case Intrin:
		return fmt.Sprintf("intrin %s, %s(%s+%d)", reg(in.A), IntrinName(in.Imm), reg(in.B), in.C)
	case Probe:
		return fmt.Sprintf("probe %d, %s", in.Imm, reg(in.A))
	default:
		return fmt.Sprintf("%s A=%d B=%d C=%d Imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
	}
}

// DisasmFunc renders a whole function.
func DisasmFunc(m *Module, f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params=%d regs=%d frame=%d):\n",
		f.Name, f.NumParams, f.NumRegs, f.FrameSize)
	for pc, in := range f.Code {
		fmt.Fprintf(&sb, "  %4d: %s\n", pc, DisasmInstr(m, in))
	}
	return sb.String()
}

// Disasm renders a whole module.
func Disasm(m *Module) string {
	var sb strings.Builder
	for i, g := range m.Globals {
		fmt.Fprintf(&sb, "global %d %s [%d bytes]\n", i, g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		sb.WriteString(DisasmFunc(m, f))
	}
	return sb.String()
}
