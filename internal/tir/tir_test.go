package tir

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildCountdown(t testing.TB) *Module {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	n := fb.NewReg()
	one := fb.NewReg()
	cond := fb.NewReg()
	loop := fb.NewLabel()
	done := fb.NewLabel()
	fb.ConstI(n, 10)
	fb.ConstI(one, 1)
	fb.Bind(loop)
	fb.Emit(Instr{Op: LeS, A: cond, B: n, C: one})
	fb.Br(cond, done)
	fb.Bin(Sub, n, n, one)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(n)
	fb.Seal()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestBuilderProducesValidModule(t *testing.T) {
	m := buildCountdown(t)
	if got := len(m.Funcs); got != 1 {
		t.Fatalf("funcs = %d, want 1", got)
	}
	if m.FuncIndex("main") != 0 {
		t.Fatalf("FuncIndex(main) = %d", m.FuncIndex("main"))
	}
	if m.FuncIndex("nope") != -1 {
		t.Fatalf("FuncIndex(nope) should be -1")
	}
}

func TestValidateRejectsBadEntry(t *testing.T) {
	m := buildCountdown(t)
	m.Entry = 5
	if err := Validate(m); err == nil {
		t.Fatal("expected out-of-range entry error")
	}
}

func TestValidateRejectsEntryWithParams(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 1)
	fb.Ret(-1)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("entry with params must be rejected")
	}
}

func TestValidateRejectsRegisterOutOfRange(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	fb.Emit(Instr{Op: ConstI, A: 99, Imm: 1})
	fb.Ret(-1)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("register out of range must be rejected")
	}
}

func TestValidateRejectsBadBranchTarget(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 0)
	fb.Emit(Instr{Op: Jmp, Imm: 100})
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("bad jump target must be rejected")
	}
}

func TestValidateRejectsFallOffEnd(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 0)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("function falling off end must be rejected")
	}
}

func TestValidateRejectsCallArity(t *testing.T) {
	mb := NewModuleBuilder()
	fa := mb.Func("f", 2)
	fa.Ret(fa.Param(0))
	fa.Seal()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 1)
	fb.Emit(Instr{Op: Call, A: int32(r), B: int32(r), C: 1, Imm: 0}) // 1 arg, wants 2
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("call arity mismatch must be rejected")
	}
}

func TestValidateRejectsFrameAddrWithoutFrame(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.Emit(Instr{Op: FrameAddr, A: int32(r)})
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("frameaddr without frame must be rejected")
	}
}

func TestValidateRejectsBadIntrinsic(t *testing.T) {
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.Emit(Instr{Op: Intrin, A: int32(r), Imm: 9999})
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err == nil {
		t.Fatal("invalid intrinsic id must be rejected")
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate function name")
		}
	}()
	mb := NewModuleBuilder()
	f1 := mb.Func("f", 0)
	f1.Ret(-1)
	f1.Seal()
	mb.Func("f", 0)
}

func TestUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbound label")
		}
	}()
	mb := NewModuleBuilder()
	fb := mb.Func("main", 0)
	l := fb.NewLabel()
	fb.Jmp(l)
	fb.Seal()
}

func TestDisasmMentionsNames(t *testing.T) {
	mb := NewModuleBuilder()
	mb.Global("counter", 8)
	callee := mb.Func("worker", 1)
	callee.Ret(callee.Param(0))
	callee.Seal()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.GlobalAddr(r, 0)
	fb.Call(r, callee.Index(), r)
	fb.Intrin(-1, IntrinPrint, r)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()
	text := Disasm(m)
	for _, want := range []string{"counter", "worker", "globaladdr", "print"} {
		if !strings.Contains(text, want) {
			t.Errorf("disasm missing %q:\n%s", want, text)
		}
	}
}

func TestContiguousArgCopying(t *testing.T) {
	mb := NewModuleBuilder()
	callee := mb.Func("add3", 3)
	s := callee.NewReg()
	callee.Bin(Add, s, callee.Param(0), callee.Param(1))
	callee.Bin(Add, s, s, callee.Param(2))
	callee.Ret(s)
	callee.Seal()
	fb := mb.Func("main", 0)
	a := fb.NewReg()
	_ = fb.NewReg() // gap so args are non-contiguous
	b := fb.NewReg()
	_ = fb.NewReg()
	c := fb.NewReg()
	fb.ConstI(a, 1)
	fb.ConstI(b, 2)
	fb.ConstI(c, 3)
	dst := fb.NewReg()
	fb.Call(dst, callee.Index(), a, b, c)
	fb.Ret(dst)
	fb.Seal()
	mb.SetEntry("main")
	if _, err := mb.Build(); err != nil {
		t.Fatalf("non-contiguous args should be handled by the builder: %v", err)
	}
}

// Property: every opcode the builder can emit has a printable mnemonic, and
// IntrinName is total over the defined intrinsic range.
func TestOpAndIntrinNamesTotal(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	for id := int64(1); id < intrinCount; id++ {
		if s := IntrinName(id); strings.HasPrefix(s, "intrin(") {
			t.Errorf("intrinsic %d has no mnemonic", id)
		}
	}
}

// Property: validation is deterministic — validating the same module twice
// gives the same verdict, and a validated module re-validates clean.
func TestValidateIdempotent(t *testing.T) {
	m := buildCountdown(t)
	if err := Validate(m); err != nil {
		t.Fatalf("first validate: %v", err)
	}
	if err := Validate(m); err != nil {
		t.Fatalf("second validate: %v", err)
	}
}

// Property (testing/quick): ConstI followed by Ret of that register is always
// a valid single-function module, for arbitrary immediates.
func TestQuickConstRetAlwaysValid(t *testing.T) {
	f := func(v int64) bool {
		mb := NewModuleBuilder()
		fb := mb.Func("main", 0)
		r := fb.NewReg()
		fb.ConstI(r, v)
		fb.Ret(r)
		fb.Seal()
		mb.SetEntry("main")
		_, err := mb.Build()
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
