package tir

import "hash/fnv"

// Fingerprint returns a stable 64-bit hash of a module's complete observable
// content: entry point, functions (name, arity, register count, frame size,
// code), and globals (name, size, initializer). Two modules with equal
// fingerprints execute identically, which is what lets a trace store index
// recordings by the program they came from and lets the offline replayer
// refuse a trace recorded against a different program.
func Fingerprint(m *Module) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	puts := func(s string) {
		put(uint64(len(s)))
		h.Write([]byte(s))
	}
	put(uint64(m.Entry))
	put(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		puts(f.Name)
		put(uint64(f.NumParams))
		put(uint64(f.NumRegs))
		put(uint64(f.FrameSize))
		put(uint64(len(f.Code)))
		for _, in := range f.Code {
			put(uint64(in.Op))
			put(uint64(uint32(in.A)))
			put(uint64(uint32(in.B)))
			put(uint64(uint32(in.C)))
			put(uint64(in.Imm))
		}
	}
	put(uint64(len(m.Globals)))
	for i := range m.Globals {
		g := &m.Globals[i]
		puts(g.Name)
		put(uint64(g.Size))
		put(uint64(len(g.Init)))
		h.Write(g.Init)
	}
	return h.Sum64()
}
