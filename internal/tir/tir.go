// Package tir defines the Thread Intermediate Representation: a small
// register-based instruction set executed by package interp.
//
// TIR exists because the paper's mechanisms — getcontext/setcontext thread
// checkpoints, interception of every synchronization and system call, and
// hardware watchpoints — have no equivalent for native goroutines. Programs
// under test are expressed in TIR so that their complete execution state
// (registers, program counter, call frames, and a virtual stack) is ordinary
// Go data that can be checkpointed at an epoch boundary and restored on
// rollback, exactly as iReplayer does with native threads.
package tir

import "fmt"

// Op is a TIR opcode.
type Op uint8

// Instruction opcodes. The operand convention is given per opcode; A, B, C
// are register indices unless stated otherwise, and Imm is a 64-bit
// immediate whose meaning depends on the opcode.
const (
	// Nop does nothing.
	Nop Op = iota
	// ConstI: regs[A] = Imm.
	ConstI
	// Mov: regs[A] = regs[B].
	Mov

	// Integer arithmetic: regs[A] = regs[B] <op> regs[C], two's complement.
	Add
	Sub
	Mul
	Div // signed; divide by zero traps
	Rem // signed; divide by zero traps
	And
	Or
	Xor
	Shl
	Shr // logical
	Sar // arithmetic
	// AddI: regs[A] = regs[B] + Imm.
	AddI
	// MulI: regs[A] = regs[B] * Imm.
	MulI
	// Neg: regs[A] = -regs[B].
	Neg
	// Not: regs[A] = ^regs[B].
	Not

	// Floating point (operands are IEEE-754 bit patterns in registers).
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FSqrt // regs[A] = sqrt(regs[B])
	ItoF  // regs[A] = float64(int64(regs[B]))
	FtoI  // regs[A] = int64(float64 value of regs[B])

	// Comparisons: regs[A] = 1 if true else 0.
	Eq
	Ne
	LtS // signed less-than
	LeS // signed less-or-equal
	LtU // unsigned less-than
	FLt
	FLe

	// Control flow.
	// Jmp: pc = Imm.
	Jmp
	// Br: if regs[A] != 0 then pc = Imm, else fall through.
	Br
	// Brz: if regs[A] == 0 then pc = Imm, else fall through.
	Brz
	// Call: invoke function Imm with arguments regs[B .. B+C-1]; the callee's
	// return value is stored in regs[A] (A < 0 discards it).
	Call
	// Ret: return regs[A] to the caller (A < 0 returns 0).
	Ret

	// Memory. Addresses are virtual-machine addresses (see package mem).
	// Load8/Load64: regs[A] = *(regs[B] + Imm).
	Load8
	Load64
	// Store8/Store64: *(regs[B] + Imm) = regs[A].
	Store8
	Store64
	// FrameAddr: regs[A] = fp + Imm, where fp is the frame's virtual-stack
	// base (valid only when the function declares FrameSize > 0).
	FrameAddr
	// GlobalAddr: regs[A] = address of global Imm.
	GlobalAddr

	// Syscall: regs[A] = syscall(Imm, regs[B .. B+C-1]). Syscall numbers are
	// defined by package vsys. Every syscall is an interception point.
	Syscall
	// Intrin: regs[A] = intrinsic(Imm, regs[B .. B+C-1]). Intrinsic IDs are
	// defined below. Synchronization intrinsics are interception points.
	Intrin
	// Probe: invoke the probe hook with (Imm, regs[A]); A < 0 passes 0.
	// Probes are inserted by instrumentation passes (CLAP path profiling,
	// ASan-style write checking) and cost nothing when no hook is set.
	Probe

	opCount
)

// Intrinsic identifiers for the Intrin opcode.
const (
	// IntrinMutexLock (m): lock the mutex whose variable address is arg0.
	IntrinMutexLock int64 = iota + 1
	// IntrinMutexUnlock (m): unlock.
	IntrinMutexUnlock
	// IntrinMutexTryLock (m): returns 1 on acquisition, 0 otherwise.
	IntrinMutexTryLock
	// IntrinCondWait (c, m): wait on condition variable c with mutex m.
	IntrinCondWait
	// IntrinCondSignal (c): wake one waiter.
	IntrinCondSignal
	// IntrinCondBroadcast (c): wake all waiters.
	IntrinCondBroadcast
	// IntrinBarrierInit (b, n): initialize barrier for n parties.
	IntrinBarrierInit
	// IntrinBarrierWait (b): returns 1 for the serial thread, 0 otherwise.
	IntrinBarrierWait
	// IntrinThreadCreate (fn, arg): spawn a thread running function fn with
	// one argument; returns the new thread ID.
	IntrinThreadCreate
	// IntrinThreadJoin (tid): join a thread; returns its exit value.
	IntrinThreadJoin
	// IntrinThreadExit (v): terminate the calling thread with exit value v.
	IntrinThreadExit
	// IntrinMalloc (size): allocate; returns address (0 on failure).
	IntrinMalloc
	// IntrinCalloc (n, size): allocate zeroed; returns address.
	IntrinCalloc
	// IntrinFree (ptr): deallocate.
	IntrinFree
	// IntrinSelfTID (): returns the calling thread's ID.
	IntrinSelfTID
	// IntrinYield (): scheduling hint; also an interception point.
	IntrinYield
	// IntrinAtomicLoad (addr): 64-bit atomic load. Ad hoc synchronization:
	// deliberately NOT recorded, per the paper's §6 limitation.
	IntrinAtomicLoad
	// IntrinAtomicStore (addr, v): 64-bit atomic store (not recorded).
	IntrinAtomicStore
	// IntrinAtomicAdd (addr, v): returns the new value (not recorded).
	IntrinAtomicAdd
	// IntrinAtomicCAS (addr, old, new): returns 1 on success (not recorded).
	IntrinAtomicCAS
	// IntrinAtomicXchg (addr, v): returns the previous value (not recorded).
	IntrinAtomicXchg
	// IntrinMemset (addr, byte, n).
	IntrinMemset
	// IntrinMemcpy (dst, src, n).
	IntrinMemcpy
	// IntrinPrint (v): debug print through the runtime.
	IntrinPrint
	// IntrinAbort (): abnormal exit (models abort(3)); ends the program.
	IntrinAbort
	// IntrinUsleep (n): sleep n virtual microseconds (scaled real delay);
	// used by racy workloads such as Crasher to widen race windows.
	IntrinUsleep
	intrinCount
)

// Instr is a single TIR instruction.
type Instr struct {
	Op      Op
	A, B, C int32
	Imm     int64
}

// Global describes one module global: a named, fixed-size region of the
// virtual machine's global segment.
type Global struct {
	Name string
	Size int64
	Init []byte // optional; len(Init) <= Size
}

// Function is one TIR function.
type Function struct {
	Name      string
	NumParams int
	NumRegs   int
	// FrameSize is the number of bytes of virtual stack to reserve for
	// address-taken locals; 0 for leaf computations.
	FrameSize int64
	Code      []Instr
}

// Module is a complete TIR program.
type Module struct {
	Funcs   []*Function
	Globals []Global
	// Entry is the index of the main function (invoked with no arguments).
	Entry int

	funcByName map[string]int
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	if m.funcByName == nil {
		m.funcByName = make(map[string]int, len(m.Funcs))
		for i, f := range m.Funcs {
			m.funcByName[f.Name] = i
		}
	}
	if i, ok := m.funcByName[name]; ok {
		return i
	}
	return -1
}

// GlobalIndex returns the index of the named global, or -1.
func (m *Module) GlobalIndex(name string) int {
	for i := range m.Globals {
		if m.Globals[i].Name == name {
			return i
		}
	}
	return -1
}

var opNames = [...]string{
	Nop: "nop", ConstI: "consti", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sar: "sar",
	AddI: "addi", MulI: "muli", Neg: "neg", Not: "not",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FSqrt: "fsqrt", ItoF: "itof", FtoI: "ftoi",
	Eq: "eq", Ne: "ne", LtS: "lts", LeS: "les", LtU: "ltu", FLt: "flt", FLe: "fle",
	Jmp: "jmp", Br: "br", Brz: "brz", Call: "call", Ret: "ret",
	Load8: "load8", Load64: "load64", Store8: "store8", Store64: "store64",
	FrameAddr: "frameaddr", GlobalAddr: "globaladdr",
	Syscall: "syscall", Intrin: "intrin", Probe: "probe",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

var intrinNames = map[int64]string{
	IntrinMutexLock: "mutex_lock", IntrinMutexUnlock: "mutex_unlock",
	IntrinMutexTryLock: "mutex_trylock",
	IntrinCondWait:     "cond_wait", IntrinCondSignal: "cond_signal",
	IntrinCondBroadcast: "cond_broadcast",
	IntrinBarrierInit:   "barrier_init", IntrinBarrierWait: "barrier_wait",
	IntrinThreadCreate: "thread_create", IntrinThreadJoin: "thread_join",
	IntrinThreadExit: "thread_exit",
	IntrinMalloc:     "malloc", IntrinCalloc: "calloc", IntrinFree: "free",
	IntrinSelfTID: "self_tid", IntrinYield: "yield",
	IntrinAtomicLoad: "atomic_load", IntrinAtomicStore: "atomic_store",
	IntrinAtomicAdd: "atomic_add", IntrinAtomicCAS: "atomic_cas",
	IntrinAtomicXchg: "atomic_xchg",
	IntrinMemset:     "memset", IntrinMemcpy: "memcpy",
	IntrinPrint: "print", IntrinAbort: "abort", IntrinUsleep: "usleep",
}

// IntrinName returns the mnemonic for an intrinsic ID.
func IntrinName(id int64) string {
	if s, ok := intrinNames[id]; ok {
		return s
	}
	return fmt.Sprintf("intrin(%d)", id)
}
