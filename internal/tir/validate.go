package tir

import "fmt"

// Validate checks structural well-formedness of a module: register bounds,
// branch targets, callee indices, and entry-point existence. The interpreter
// assumes a validated module and performs no per-instruction bounds checks on
// registers.
func Validate(m *Module) error {
	if m.Entry < 0 || m.Entry >= len(m.Funcs) {
		return fmt.Errorf("tir: module entry %d out of range (%d funcs)", m.Entry, len(m.Funcs))
	}
	if m.Funcs[m.Entry].NumParams != 0 {
		return fmt.Errorf("tir: entry %s must take no parameters", m.Funcs[m.Entry].Name)
	}
	for fi, f := range m.Funcs {
		if err := validateFunc(m, f); err != nil {
			return fmt.Errorf("tir: func %d (%s): %w", fi, f.Name, err)
		}
	}
	return nil
}

func validateFunc(m *Module, f *Function) error {
	if f.NumParams > f.NumRegs {
		return fmt.Errorf("params %d exceed regs %d", f.NumParams, f.NumRegs)
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("empty body")
	}
	checkReg := func(pc int, r int32, allowNeg bool) error {
		if r < 0 {
			if allowNeg {
				return nil
			}
			return fmt.Errorf("pc %d: negative register", pc)
		}
		if int(r) >= f.NumRegs {
			return fmt.Errorf("pc %d: register %d out of range (%d regs)", pc, r, f.NumRegs)
		}
		return nil
	}
	for pc, in := range f.Code {
		if in.Op >= opCount {
			return fmt.Errorf("pc %d: invalid opcode %d", pc, in.Op)
		}
		switch in.Op {
		case Nop:
		case ConstI:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
		case Mov, Neg, Not, FNeg, FSqrt, ItoF, FtoI, AddI, MulI:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, false); err != nil {
				return err
			}
		case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sar,
			FAdd, FSub, FMul, FDiv, Eq, Ne, LtS, LeS, LtU, FLt, FLe:
			for _, r := range [3]int32{in.A, in.B, in.C} {
				if err := checkReg(pc, r, false); err != nil {
					return err
				}
			}
		case Jmp:
			if in.Imm < 0 || in.Imm >= int64(len(f.Code)) {
				return fmt.Errorf("pc %d: jump target %d out of range", pc, in.Imm)
			}
		case Br, Brz:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if in.Imm < 0 || in.Imm >= int64(len(f.Code)) {
				return fmt.Errorf("pc %d: branch target %d out of range", pc, in.Imm)
			}
		case Call:
			if err := checkReg(pc, in.A, true); err != nil {
				return err
			}
			if in.Imm < 0 || in.Imm >= int64(len(m.Funcs)) {
				return fmt.Errorf("pc %d: callee %d out of range", pc, in.Imm)
			}
			callee := m.Funcs[in.Imm]
			if int(in.C) != callee.NumParams {
				return fmt.Errorf("pc %d: call %s with %d args, want %d",
					pc, callee.Name, in.C, callee.NumParams)
			}
			if err := checkArgWindow(pc, f, in.B, in.C); err != nil {
				return err
			}
		case Ret:
			if err := checkReg(pc, in.A, true); err != nil {
				return err
			}
		case Load8, Load64:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, false); err != nil {
				return err
			}
		case Store8, Store64:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, false); err != nil {
				return err
			}
		case FrameAddr:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if f.FrameSize <= 0 {
				return fmt.Errorf("pc %d: frameaddr in function with no frame", pc)
			}
			if in.Imm < 0 || in.Imm >= f.FrameSize {
				return fmt.Errorf("pc %d: frame offset %d out of range [0,%d)", pc, in.Imm, f.FrameSize)
			}
		case GlobalAddr:
			if err := checkReg(pc, in.A, false); err != nil {
				return err
			}
			if in.Imm < 0 || in.Imm >= int64(len(m.Globals)) {
				return fmt.Errorf("pc %d: global %d out of range", pc, in.Imm)
			}
		case Syscall:
			if err := checkReg(pc, in.A, true); err != nil {
				return err
			}
			if err := checkArgWindow(pc, f, in.B, in.C); err != nil {
				return err
			}
		case Intrin:
			if err := checkReg(pc, in.A, true); err != nil {
				return err
			}
			if in.Imm <= 0 || in.Imm >= intrinCount {
				return fmt.Errorf("pc %d: invalid intrinsic %d", pc, in.Imm)
			}
			if err := checkArgWindow(pc, f, in.B, in.C); err != nil {
				return err
			}
		case Probe:
			if err := checkReg(pc, in.A, true); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pc %d: unhandled opcode %s", pc, in.Op)
		}
	}
	// A function must not fall off its end: final instruction must be an
	// unconditional transfer.
	last := f.Code[len(f.Code)-1]
	switch last.Op {
	case Ret, Jmp, Intrin:
		// Intrin is allowed for thread_exit/abort tails; the interpreter
		// still traps if a non-terminating intrinsic falls off the end.
	default:
		return fmt.Errorf("falls off end (last op %s)", last.Op)
	}
	return nil
}

func checkArgWindow(pc int, f *Function, base, n int32) error {
	if n == 0 {
		return nil
	}
	if base < 0 || int(base)+int(n) > f.NumRegs {
		return fmt.Errorf("pc %d: arg window [%d,%d) out of range (%d regs)",
			pc, base, base+n, f.NumRegs)
	}
	return nil
}
