package tir

import (
	"fmt"
	"strconv"
	"strings"

	"regexp"
)

// Assemble parses textual TIR assembly into a validated Module. The syntax
// mirrors the disassembler's output:
//
//	global counter 8
//	global banner 16 "hi"
//
//	func main/0 regs=3 frame=0 {
//	  consti r0, 10
//	loop:
//	  addi r0, r0, -1
//	  br r0, @loop
//	  ret r0
//	}
//
//	entry main
//
// Operand forms: registers rN (or _ for "discard"), immediates (decimal or
// 0x hex), label references @name, memory operands [rN+OFF], frame operands
// fp+OFF, call/syscall/intrinsic argument windows (rBASE+COUNT), global and
// function names.
func Assemble(src string) (*Module, error) {
	p := &asmParser{mb: NewModuleBuilder(), funcIdx: map[string]int{}}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.mb.Build()
}

// MustAssemble is Assemble that panics on error (tests, embedded programs).
func MustAssemble(src string) *Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

type asmParser struct {
	mb      *ModuleBuilder
	funcIdx map[string]int

	fb     *FuncBuilder
	labels map[string]Label
	line   int
}

func (p *asmParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("tir asm: line %d: "+format, append([]interface{}{p.line}, args...)...)
}

var funcHeaderRE = regexp.MustCompile(`^func\s+(\w+)/(\d+)\s+regs=(\d+)(?:\s+frame=(\d+))?\s*\{$`)

func (p *asmParser) run(src string) error {
	// First pass: declare functions so calls can be forward references.
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := stripComment(raw)
		if m := funcHeaderRE.FindStringSubmatch(line); m != nil {
			if _, dup := p.funcIdx[m[1]]; dup {
				return p.errf("duplicate function %q", m[1])
			}
			params, _ := strconv.Atoi(m[2])
			p.funcIdx[m[1]] = p.mb.Declare(m[1], params)
		}
	}
	// Second pass: globals, bodies, entry.
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "global "):
			if p.fb != nil {
				return p.errf("global inside function body")
			}
			if err := p.global(line); err != nil {
				return err
			}
		case funcHeaderRE.MatchString(line):
			m := funcHeaderRE.FindStringSubmatch(line)
			if p.fb != nil {
				return p.errf("nested function")
			}
			p.fb = p.mb.FuncBuilderFor(p.funcIdx[m[1]])
			regs, _ := strconv.Atoi(m[3])
			for p.fb.fn.NumRegs < regs {
				p.fb.NewReg()
			}
			if m[4] != "" {
				fr, _ := strconv.Atoi(m[4])
				p.fb.SetFrameSize(int64(fr))
			}
			p.labels = map[string]Label{}
		case line == "}":
			if p.fb == nil {
				return p.errf("unmatched }")
			}
			for name, l := range p.labels {
				if p.fb.labels[l] == -1 {
					return p.errf("label %q referenced but never bound", name)
				}
			}
			p.fb.Seal()
			p.fb = nil
		case strings.HasPrefix(line, "entry "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "entry "))
			if _, ok := p.funcIdx[name]; !ok {
				return p.errf("entry references unknown function %q", name)
			}
			p.mb.SetEntry(name)
		case strings.HasSuffix(line, ":") && p.fb != nil:
			name := strings.TrimSuffix(line, ":")
			p.fb.Bind(p.label(name))
		case p.fb != nil:
			if err := p.instr(line); err != nil {
				return err
			}
		default:
			return p.errf("statement outside function: %q", line)
		}
	}
	if p.fb != nil {
		return p.errf("unterminated function body")
	}
	return nil
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (p *asmParser) global(line string) error {
	fields := splitQuoted(strings.TrimPrefix(line, "global "))
	if len(fields) < 2 {
		return p.errf("global needs a name and size")
	}
	size, err := strconv.ParseInt(fields[1], 0, 64)
	if err != nil || size <= 0 {
		return p.errf("bad global size %q", fields[1])
	}
	var init []byte
	if len(fields) == 3 {
		s, err := strconv.Unquote(fields[2])
		if err != nil {
			return p.errf("bad global initializer %q", fields[2])
		}
		init = []byte(s)
	}
	p.mb.GlobalInit(fields[0], size, init)
	return nil
}

// splitQuoted splits on spaces but keeps a trailing quoted string intact.
func splitQuoted(s string) []string {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, `"`); i >= 0 {
		head := strings.Fields(s[:i])
		return append(head, strings.TrimSpace(s[i:]))
	}
	return strings.Fields(s)
}

func (p *asmParser) label(name string) Label {
	if l, ok := p.labels[name]; ok {
		return l
	}
	l := p.fb.NewLabel()
	p.labels[name] = l
	return l
}

func (p *asmParser) reg(tok string) (int32, error) {
	tok = strings.TrimSpace(tok)
	if tok == "_" {
		return -1, nil
	}
	if !strings.HasPrefix(tok, "r") {
		return 0, p.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= p.fb.fn.NumRegs {
		return 0, p.errf("bad register %q (function has %d regs)", tok, p.fb.fn.NumRegs)
	}
	return int32(n), nil
}

func (p *asmParser) imm(tok string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", tok)
	}
	return v, nil
}

var memRE = regexp.MustCompile(`^\[(r\d+)\s*([+-]\s*\d+)?\]$`)
var windowRE = regexp.MustCompile(`^(\w+)\((?:(r\d+)\+(\d+))?\)$`)

func (p *asmParser) instr(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	a := func(i int) string {
		if i < len(args) {
			return args[i]
		}
		return ""
	}
	threeReg := map[string]Op{
		"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
		"and": And, "or": Or, "xor": Xor, "shl": Shl, "shr": Shr, "sar": Sar,
		"fadd": FAdd, "fsub": FSub, "fmul": FMul, "fdiv": FDiv,
		"eq": Eq, "ne": Ne, "lts": LtS, "les": LeS, "ltu": LtU, "flt": FLt, "fle": FLe,
	}
	twoReg := map[string]Op{
		"mov": Mov, "neg": Neg, "not": Not, "fneg": FNeg, "fsqrt": FSqrt,
		"itof": ItoF, "ftoi": FtoI,
	}
	switch {
	case op == "nop":
		p.fb.Emit(Instr{Op: Nop})
	case op == "consti":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		v, err := p.imm(a(1))
		if err != nil {
			return err
		}
		p.fb.Emit(Instr{Op: ConstI, A: r, Imm: v})
	case twoReg[op] != 0:
		r1, err := p.reg(a(0))
		if err != nil {
			return err
		}
		r2, err := p.reg(a(1))
		if err != nil {
			return err
		}
		p.fb.Emit(Instr{Op: twoReg[op], A: r1, B: r2})
	case threeReg[op] != 0:
		r1, err := p.reg(a(0))
		if err != nil {
			return err
		}
		r2, err := p.reg(a(1))
		if err != nil {
			return err
		}
		r3, err := p.reg(a(2))
		if err != nil {
			return err
		}
		p.fb.Emit(Instr{Op: threeReg[op], A: r1, B: r2, C: r3})
	case op == "addi" || op == "muli":
		r1, err := p.reg(a(0))
		if err != nil {
			return err
		}
		r2, err := p.reg(a(1))
		if err != nil {
			return err
		}
		v, err := p.imm(a(2))
		if err != nil {
			return err
		}
		o := AddI
		if op == "muli" {
			o = MulI
		}
		p.fb.Emit(Instr{Op: o, A: r1, B: r2, Imm: v})
	case op == "jmp":
		if !strings.HasPrefix(a(0), "@") {
			return p.errf("jmp needs @label")
		}
		p.fb.Jmp(p.label(a(0)[1:]))
	case op == "br" || op == "brz":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		if !strings.HasPrefix(a(1), "@") {
			return p.errf("%s needs @label", op)
		}
		if op == "br" {
			p.fb.Br(r, p.label(a(1)[1:]))
		} else {
			p.fb.Brz(r, p.label(a(1)[1:]))
		}
	case op == "ret":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		p.fb.Ret(r)
	case op == "load8" || op == "load64":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		base, off, err := p.memOperand(a(1))
		if err != nil {
			return err
		}
		o := Load8
		if op == "load64" {
			o = Load64
		}
		p.fb.Emit(Instr{Op: o, A: r, B: base, Imm: off})
	case op == "store8" || op == "store64":
		base, off, err := p.memOperand(a(0))
		if err != nil {
			return err
		}
		r, err := p.reg(a(1))
		if err != nil {
			return err
		}
		o := Store8
		if op == "store64" {
			o = Store64
		}
		p.fb.Emit(Instr{Op: o, A: r, B: base, Imm: off})
	case op == "frameaddr":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		fpOff := strings.TrimPrefix(a(1), "fp+")
		v, err := p.imm(fpOff)
		if err != nil {
			return err
		}
		p.fb.Emit(Instr{Op: FrameAddr, A: r, Imm: v})
	case op == "globaladdr":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		gi := p.mb.mod.GlobalIndex(a(1))
		if gi < 0 {
			return p.errf("unknown global %q", a(1))
		}
		p.fb.Emit(Instr{Op: GlobalAddr, A: r, Imm: int64(gi)})
	case op == "call":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		name, base, count, err := p.window(a(1))
		if err != nil {
			return err
		}
		fi, ok := p.funcIdx[name]
		if !ok {
			return p.errf("unknown function %q", name)
		}
		p.fb.Emit(Instr{Op: Call, A: r, B: base, C: count, Imm: int64(fi)})
	case op == "syscall":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		name, base, count, err := p.window(a(1))
		if err != nil {
			return err
		}
		num, err := p.imm(name)
		if err != nil {
			return p.errf("syscall number must be numeric, got %q", name)
		}
		p.fb.Emit(Instr{Op: Syscall, A: r, B: base, C: count, Imm: num})
	case op == "intrin":
		r, err := p.reg(a(0))
		if err != nil {
			return err
		}
		name, base, count, err := p.window(a(1))
		if err != nil {
			return err
		}
		id, ok := intrinByName(name)
		if !ok {
			return p.errf("unknown intrinsic %q", name)
		}
		p.fb.Emit(Instr{Op: Intrin, A: r, B: base, C: count, Imm: id})
	case op == "probe":
		v, err := p.imm(a(0))
		if err != nil {
			return err
		}
		r, err := p.reg(a(1))
		if err != nil {
			return err
		}
		p.fb.Emit(Instr{Op: Probe, A: r, Imm: v})
	default:
		return p.errf("unknown mnemonic %q", op)
	}
	return nil
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

func (p *asmParser) memOperand(tok string) (int32, int64, error) {
	m := memRE.FindStringSubmatch(strings.TrimSpace(tok))
	if m == nil {
		return 0, 0, p.errf("expected [rN+OFF] operand, got %q", tok)
	}
	r, err := p.reg(m[1])
	if err != nil {
		return 0, 0, err
	}
	var off int64
	if m[2] != "" {
		off, err = p.imm(strings.ReplaceAll(m[2], " ", ""))
		if err != nil {
			return 0, 0, err
		}
	}
	return r, off, nil
}

// window parses name(rBASE+COUNT) or name() argument windows.
func (p *asmParser) window(tok string) (string, int32, int32, error) {
	m := windowRE.FindStringSubmatch(strings.TrimSpace(tok))
	if m == nil {
		return "", 0, 0, p.errf("expected name(rN+COUNT) operand, got %q", tok)
	}
	if m[2] == "" {
		return m[1], 0, 0, nil
	}
	base, err := p.reg(m[2])
	if err != nil {
		return "", 0, 0, err
	}
	count, err := strconv.Atoi(m[3])
	if err != nil {
		return "", 0, 0, p.errf("bad arg count in %q", tok)
	}
	return m[1], base, int32(count), nil
}

func intrinByName(name string) (int64, bool) {
	for id, n := range intrinNames {
		if n == name {
			return id, true
		}
	}
	return 0, false
}
