package debug

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hostrace"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// buildFaultingProgram: a helper writes a value to a heap object, then main
// dereferences null.
func buildFaultingProgram() *tir.Module {
	mb := tir.NewModuleBuilder()
	writer := mb.Func("write_cell", 2)
	writer.Store64(writer.Param(1), writer.Param(0), 0)
	writer.Ret(-1)
	writer.Seal()
	m := mb.Func("main", 0)
	sz, p, v, z := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(sz, 32)
	m.Intrin(p, tir.IntrinMalloc, sz)
	m.ConstI(v, 77)
	m.Call(-1, writer.Index(), p, v)
	m.ConstI(z, 0)
	m.Load64(v, z, 0) // SIGSEGV analogue
	m.Ret(v)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestScriptedSessionOnFault(t *testing.T) {
	script := strings.Join([]string{
		"threads",
		"bt 0",
		"mem 0x40000000 32",
		"quit",
	}, "\n")
	var out strings.Builder
	d := New(strings.NewReader(script), &out)
	rt, err := core.New(buildFaultingProgram(), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run()
	if runErr == nil {
		t.Fatal("program should fail with the fault")
	}
	text := out.String()
	for _, want := range []string{"abnormal exit", "thread 0", "main+", "(irdb)"} {
		if !strings.Contains(text, want) {
			t.Errorf("session output missing %q:\n%s", want, text)
		}
	}
	if d.Sessions() != 1 {
		t.Fatalf("sessions = %d", d.Sessions())
	}
}

func TestWatchRollbackIdentifiesWriter(t *testing.T) {
	// Set a watchpoint on the heap cell the helper writes, roll back, and
	// expect the replay report to blame write_cell — the §4.3 workflow.
	// The heap cell address is deterministic: first allocation of main.
	var addr uint64
	probe := core.Options{DisableRecording: true}
	rtProbe, err := core.New(buildFaultingProgram(), probe)
	if err != nil {
		t.Fatal(err)
	}
	rtProbe.Run() // faults; we only need the allocator layout
	// First allocation lands at the start of thread 0's first block.
	base, _ := rtProbe.Mem().HeapRange()
	addr = base + 8 // HeaderSize

	script := strings.Join([]string{
		fmt.Sprintf("watch %x 8", addr),
		"rollback",
		"continue",
	}, "\n")
	var out strings.Builder
	d := New(strings.NewReader(script), &out)
	rt, err := core.New(buildFaultingProgram(), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("fault expected")
	}
	text := out.String()
	if !strings.Contains(text, "watchpoint 1 armed") {
		t.Fatalf("watch failed:\n%s", text)
	}
	if !strings.Contains(text, "write_cell+") {
		t.Fatalf("replay report must blame write_cell:\n%s", text)
	}
	if d.Sessions() != 2 {
		t.Fatalf("sessions = %d, want fault session + post-replay session", d.Sessions())
	}
}

//ir:racy drives Crasher to its racy fault to exercise the debug session
func TestSessionOnCrasherFault(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("Crasher races on VM memory by design (§5.2.1)")
	}
	// §5.5: the interactive method catches Crasher's segfault.
	for i := 0; i < 20; i++ {
		script := "threads\nquit\n"
		var out strings.Builder
		d := New(strings.NewReader(script), &out)
		rt, err := core.New(workloads.DefaultCrasher().Build(), d.Options())
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := rt.Run()
		if runErr != nil && d.Sessions() > 0 {
			if !strings.Contains(out.String(), "abnormal exit") {
				t.Fatalf("missing banner:\n%s", out.String())
			}
			return
		}
	}
	t.Skip("race never fired in 20 runs")
}

func TestUnknownCommandAndHelp(t *testing.T) {
	script := "frobnicate\nhelp\nquit\n"
	var out strings.Builder
	d := New(strings.NewReader(script), &out)
	rt, err := core.New(buildFaultingProgram(), d.Options())
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	if !strings.Contains(out.String(), "unknown command") || !strings.Contains(out.String(), "commands:") {
		t.Fatalf("output:\n%s", out.String())
	}
}
