// Package debug implements the paper's interactive debugging tool (§4.3):
// when the program exits abnormally (segmentation fault, abort, assertion),
// the runtime stops inside the fault handler and hands control to a
// GDB-style command session. The user can inspect threads and memory, set
// watchpoints on faulting addresses, issue `rollback` to re-execute the
// epoch in-situ, and receive watchpoint reports that identify the root
// cause — without restarting the buggy application.
//
// Commands:
//
//	threads            list every thread with its top frame
//	bt <tid>           full backtrace of one thread
//	mem <addr> <n>     hex dump of n bytes of virtual memory
//	watch <addr> <n>   arm a watchpoint (max 4, hardware-style)
//	rollback           roll back and re-execute the epoch
//	continue           resume (or finish, at program end)
//	quit               abort the program
package debug

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Debugger is an interactive session bound to a runtime via core.Options.
type Debugger struct {
	in  *bufio.Scanner
	out io.Writer

	// BreakOnEnd opens a session at normal program end too (default: only
	// on faults, like the paper's abnormal-exit interception).
	BreakOnEnd bool

	sessions int
}

// New builds a debugger reading commands from in and reporting to out.
func New(in io.Reader, out io.Writer) *Debugger {
	return &Debugger{in: bufio.NewScanner(in), out: out}
}

// Options returns core options that route epoch boundaries through the
// debugger.
func (d *Debugger) Options() core.Options {
	return core.Options{
		OnEpochEnd:      d.OnEpochEnd,
		OnReplayMatched: d.OnReplayMatched,
		MaxReplays:      1000,
	}
}

// OnEpochEnd opens an interactive session on faults (and optionally at
// program end).
func (d *Debugger) OnEpochEnd(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
	if info.Reason == core.StopFault {
		tid, ferr := rt.FaultedThread()
		fmt.Fprintf(d.out, "\n*** abnormal exit: thread %d: %v\n", tid, ferr)
		return d.session(rt)
	}
	if info.Reason == core.StopProgramEnd && d.BreakOnEnd {
		fmt.Fprintf(d.out, "\n*** program end (epoch %d)\n", info.Epoch)
		return d.session(rt)
	}
	return core.Proceed
}

// OnReplayMatched reports watchpoint hits after a rollback and reopens the
// session.
func (d *Debugger) OnReplayMatched(rt *core.Runtime, attempts int) core.Decision {
	hits := rt.WatchHits()
	fmt.Fprintf(d.out, "replay matched after %d attempt(s); %d watchpoint hit(s)\n", attempts, len(hits))
	for i, h := range hits {
		fmt.Fprintf(d.out, "hit %d: write of %d bytes at %#x\n", i, h.Size, h.Addr)
		for _, e := range h.Stack {
			fmt.Fprintf(d.out, "  at %s+%d\n", e.Func, e.PC)
		}
	}
	return d.session(rt)
}

// Sessions reports how many interactive sessions ran.
func (d *Debugger) Sessions() int { return d.sessions }

func (d *Debugger) session(rt *core.Runtime) core.Decision {
	d.sessions++
	fmt.Fprintf(d.out, "(irdb) ")
	for d.in.Scan() {
		line := strings.TrimSpace(d.in.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Fprintf(d.out, "(irdb) ")
			continue
		}
		switch fields[0] {
		case "threads":
			d.cmdThreads(rt)
		case "bt":
			d.cmdBacktrace(rt, fields[1:])
		case "mem":
			d.cmdMem(rt, fields[1:])
		case "watch":
			d.cmdWatch(rt, fields[1:])
		case "rollback":
			fmt.Fprintf(d.out, "rolling back to the last epoch boundary...\n")
			return core.Replay
		case "continue", "c":
			return core.Proceed
		case "quit", "q":
			return core.Abort
		case "help":
			fmt.Fprintf(d.out, "commands: threads, bt <tid>, mem <addr> <n>, watch <addr> <n>, rollback, continue, quit\n")
		default:
			fmt.Fprintf(d.out, "unknown command %q (try help)\n", fields[0])
		}
		fmt.Fprintf(d.out, "(irdb) ")
	}
	// Input exhausted: abort, like a closed GDB session.
	return core.Abort
}

func (d *Debugger) cmdThreads(rt *core.Runtime) {
	stacks := rt.ThreadStacks()
	ids := make([]int32, 0, len(stacks))
	for id := range stacks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		top := "?"
		if s := stacks[id]; len(s) > 0 {
			top = fmt.Sprintf("%s+%d", s[0].Func, s[0].PC)
		}
		fmt.Fprintf(d.out, "thread %d: %s\n", id, top)
	}
}

func (d *Debugger) cmdBacktrace(rt *core.Runtime, args []string) {
	if len(args) != 1 {
		fmt.Fprintf(d.out, "usage: bt <tid>\n")
		return
	}
	tid, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintf(d.out, "bad tid %q\n", args[0])
		return
	}
	stacks := rt.ThreadStacks()
	s, ok := stacks[int32(tid)]
	if !ok {
		fmt.Fprintf(d.out, "no such thread %d\n", tid)
		return
	}
	for i, e := range s {
		fmt.Fprintf(d.out, "#%d %s+%d\n", i, e.Func, e.PC)
	}
}

func (d *Debugger) cmdMem(rt *core.Runtime, args []string) {
	if len(args) != 2 {
		fmt.Fprintf(d.out, "usage: mem <addr> <n>\n")
		return
	}
	addr, err1 := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 64)
	n, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || n <= 0 || n > 4096 {
		fmt.Fprintf(d.out, "bad arguments\n")
		return
	}
	b, err := rt.Mem().ReadBytes(addr, n)
	if err != nil {
		fmt.Fprintf(d.out, "unmapped: %v\n", err)
		return
	}
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(d.out, "%#x: % x\n", addr+uint64(i), b[i:end])
	}
}

func (d *Debugger) cmdWatch(rt *core.Runtime, args []string) {
	if len(args) != 2 {
		fmt.Fprintf(d.out, "usage: watch <addr> <n>\n")
		return
	}
	addr, err1 := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 64)
	n, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || n <= 0 {
		fmt.Fprintf(d.out, "bad arguments\n")
		return
	}
	if err := rt.Mem().ArmWatchpoint(addr, n); err != nil {
		fmt.Fprintf(d.out, "%v\n", err)
		return
	}
	fmt.Fprintf(d.out, "watchpoint %d armed at %#x (%d bytes)\n",
		len(rt.Mem().Watchpoints()), addr, n)
}
