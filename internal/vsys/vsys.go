// Package vsys is the virtual operating system beneath programs under test:
// an in-memory filesystem with Unix-style lowest-free descriptor allocation,
// simulated sockets fed by an external nondeterministic stream, a virtual
// clock, and a process identity.
//
// It exists so that iReplayer's system-call handling (§2.2.3) can be
// implemented faithfully: the five-way classification (repeatable /
// recordable / revocable / deferrable / irrevocable), position-based file
// replay, close/munmap deferral, and the descriptor-reuse hazard that makes
// deferral necessary in the in-situ setting.
package vsys

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Syscall numbers understood by the virtual OS.
const (
	// SysGetpid () → pid. Repeatable: in-situ replay runs in the same
	// process, so the value never changes.
	SysGetpid int64 = iota + 1
	// SysGettimeofday () → virtual microseconds. Recordable.
	SysGettimeofday
	// SysOpen (pathAddr, pathLen) → fd. Performed during recording; during
	// replay the recorded fd is returned without re-opening (the file is
	// still open in-situ).
	SysOpen
	// SysClose (fd) → 0. Deferrable: executed at the next epoch boundary so
	// descriptors cannot be reused within an epoch (§2.2.3).
	SysClose
	// SysRead (fd, bufAddr, n) → bytes read. Revocable for files: re-issued
	// during replay after position recovery. Recordable for sockets.
	SysRead
	// SysWrite (fd, bufAddr, n) → bytes written. Revocable for files,
	// recordable for sockets.
	SysWrite
	// SysLseek (fd, off, whence) → new position. A repositioning lseek is
	// irrevocable (§2.2.3: a write after lseek destroys data earlier reads
	// depended on); lseek(fd, 0, SEEK_CUR) is repeatable.
	SysLseek
	// SysSocket () → fd connected to a simulated external peer. Recordable.
	SysSocket
	// SysMmap (size) → address of a fresh mapping. Handled by the runtime's
	// deterministic mapper.
	SysMmap
	// SysMunmap (addr, size) → 0. Deferrable, like close.
	SysMunmap
	// SysFork () → child pid. Irrevocable: closes the epoch.
	SysFork
	// SysExecve (pathAddr, pathLen) → never returns meaningfully.
	// Irrevocable.
	SysExecve
	// SysFcntl (fd, cmd) → cmd-dependent. Classified per flag (§2.2.3):
	// F_GETOWN repeatable, F_DUPFD recordable.
	SysFcntl
	// SysRand () → nondeterministic 64-bit value (models reads of
	// /dev/urandom). Recordable.
	SysRand
)

// Fcntl command values.
const (
	FGetOwn int64 = 1
	FDupFD  int64 = 2
)

// Lseek whence values.
const (
	SeekSet int64 = 0
	SeekCur int64 = 1
	SeekEnd int64 = 2
)

// Class is a syscall's replay classification (§2.2.3).
type Class uint8

const (
	// Repeatable calls return identical results in-situ with no handling.
	Repeatable Class = iota + 1
	// Recordable calls have their results logged and returned during replay
	// without re-invocation.
	Recordable
	// Revocable calls are re-issued during replay after state recovery
	// (file positions).
	Revocable
	// Deferrable calls irrevocably change state but can be postponed to the
	// next epoch boundary.
	Deferrable
	// Irrevocable calls close the current epoch.
	Irrevocable
)

func (c Class) String() string {
	switch c {
	case Repeatable:
		return "repeatable"
	case Recordable:
		return "recordable"
	case Revocable:
		return "revocable"
	case Deferrable:
		return "deferrable"
	case Irrevocable:
		return "irrevocable"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// FDKind distinguishes descriptor types.
type FDKind uint8

const (
	FDFile FDKind = iota + 1
	FDSocket
)

// DefaultMaxFDs is the default open-file limit; the runtime raises it at
// initialization because deferring close() can exceed the default (§2.2.3).
const DefaultMaxFDs = 64

// File is an in-memory VFS file. Contents deliberately persist across
// rollback: like the paper, file data is not checkpointed — replayed writes
// reproduce it, only positions are recovered.
type File struct {
	Name string
	Data []byte
}

// Socket models a connection to an external peer that produces a
// nondeterministic byte stream (the reason socket reads are recordable).
type Socket struct {
	rng      *rand.Rand
	consumed int64
	sent     int64
}

type fd struct {
	kind FDKind
	file *File
	pos  int64
	sock *Socket
}

// OS is one program's virtual operating system.
type OS struct {
	mu     sync.Mutex
	pid    int64
	clock  int64 // virtual microseconds; advances on every query
	step   int64
	maxFDs int
	fds    map[int64]*fd
	files  map[string]*File
	// entropy drives sockets and SysRand; seeded from the host for genuine
	// run-to-run nondeterminism (that is the point: these results must be
	// recorded to replay identically).
	entropy *rand.Rand
}

// New creates a virtual OS. seed drives external nondeterminism; production
// use passes a host-derived seed, tests pass a constant.
func New(pid int64, seed int64) *OS {
	return &OS{
		pid:     pid,
		clock:   1_000_000,
		step:    13,
		maxFDs:  DefaultMaxFDs,
		fds:     make(map[int64]*fd),
		files:   make(map[string]*File),
		entropy: rand.New(rand.NewSource(seed)),
	}
}

// RaiseFDLimit lifts the descriptor limit, as iReplayer does during
// initialization to absorb deferred closes.
func (o *OS) RaiseFDLimit(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n > o.maxFDs {
		o.maxFDs = n
	}
}

// FDLimit returns the current descriptor limit.
func (o *OS) FDLimit() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.maxFDs
}

// AddFile installs a file into the VFS (workload setup).
func (o *OS) AddFile(name string, data []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.files[name] = &File{Name: name, Data: data}
}

// FileData returns a copy of a VFS file's contents.
func (o *OS) FileData(name string) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.files[name]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(f.Data))
	copy(out, f.Data)
	return out, true
}

// Classify returns the replay class of a syscall invocation. Some calls are
// classified by argument (fcntl flags, lseek whence), per §2.2.3.
func (o *OS) Classify(num int64, args []uint64) Class {
	switch num {
	case SysGetpid:
		return Repeatable
	case SysGettimeofday, SysSocket, SysRand:
		return Recordable
	case SysOpen:
		// Performed once; replay returns the recorded descriptor.
		return Recordable
	case SysRead, SysWrite:
		if f := o.lookup(args); f != nil && f.kind == FDSocket {
			return Recordable
		}
		return Revocable
	case SysLseek:
		if len(args) >= 3 && int64(args[2]) == SeekCur && int64(args[1]) == 0 {
			return Repeatable // pure position query
		}
		return Irrevocable
	case SysClose, SysMunmap:
		return Deferrable
	case SysFork, SysExecve:
		return Irrevocable
	case SysFcntl:
		if len(args) >= 2 && int64(args[1]) == FGetOwn {
			return Repeatable
		}
		return Recordable
	case SysMmap:
		// Served by the deterministic allocator, so re-execution during
		// replay reproduces the same mapping: revocable.
		return Revocable
	}
	return Irrevocable
}

func (o *OS) lookup(args []uint64) *fd {
	if len(args) == 0 {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fds[int64(args[0])]
}

// allocFD returns the lowest free descriptor — the Unix rule that creates
// the paper's open(1)/close(1)/open(2) reuse hazard.
func (o *OS) allocFD() (int64, error) {
	for i := int64(3); i < int64(o.maxFDs); i++ { // 0-2 reserved, as on Unix
		if _, used := o.fds[i]; !used {
			return i, nil
		}
	}
	return -1, fmt.Errorf("vsys: descriptor limit %d exhausted", o.maxFDs)
}

// Pid implements getpid.
func (o *OS) Pid() int64 { return o.pid }

// Gettimeofday returns the advancing virtual clock.
func (o *OS) Gettimeofday() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clock += o.step
	return o.clock
}

// Rand returns external entropy.
func (o *OS) Rand() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.entropy.Uint64()
}

// Open opens a VFS file, creating it if absent.
func (o *OS) Open(path string) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.files[path]
	if !ok {
		f = &File{Name: path}
		o.files[path] = f
	}
	n, err := o.allocFD()
	if err != nil {
		return -1, err
	}
	o.fds[n] = &fd{kind: FDFile, file: f}
	return n, nil
}

// OpenAt opens a VFS file at a specific descriptor, creating the file if
// absent and replacing any descriptor already installed at fdn. It exists
// for offline trace replay: a recorded open is classified recordable (the
// in-situ replay finds the file still open from the original execution), but
// a replay in a fresh process must materialize the descriptor itself — at
// the recorded number, so that concurrent opens need no ordering, and at
// position zero, which is what a fresh open would have. Re-invocation on a
// divergence retry simply resets the position.
func (o *OS) OpenAt(path string, fdn int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if fdn < 3 || fdn >= int64(o.maxFDs) {
		return fmt.Errorf("vsys: open at out-of-range fd %d", fdn)
	}
	f, ok := o.files[path]
	if !ok {
		f = &File{Name: path}
		o.files[path] = f
	}
	o.fds[fdn] = &fd{kind: FDFile, file: f}
	return nil
}

// Socket opens a descriptor connected to a fresh simulated peer.
func (o *OS) Socket() (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, err := o.allocFD()
	if err != nil {
		return -1, err
	}
	o.fds[n] = &fd{kind: FDSocket, sock: &Socket{rng: rand.New(rand.NewSource(o.entropy.Int63()))}}
	return n, nil
}

// Close releases a descriptor immediately. The runtime defers calls here
// until the next epoch boundary.
func (o *OS) Close(n int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.fds[n]; !ok {
		return fmt.Errorf("vsys: close of closed fd %d", n)
	}
	delete(o.fds, n)
	return nil
}

// Read reads up to n bytes; for files it advances the position, for sockets
// it consumes the peer's nondeterministic stream.
func (o *OS) Read(fdn int64, n int) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.fds[fdn]
	if !ok {
		return nil, fmt.Errorf("vsys: read of bad fd %d", fdn)
	}
	switch f.kind {
	case FDFile:
		if f.pos >= int64(len(f.file.Data)) {
			return nil, nil // EOF
		}
		end := f.pos + int64(n)
		if end > int64(len(f.file.Data)) {
			end = int64(len(f.file.Data))
		}
		out := make([]byte, end-f.pos)
		copy(out, f.file.Data[f.pos:end])
		f.pos = end
		return out, nil
	case FDSocket:
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(f.sock.rng.Intn(256))
		}
		f.sock.consumed += int64(n)
		return out, nil
	}
	return nil, fmt.Errorf("vsys: read of unknown fd kind")
}

// Write writes bytes; file writes extend the file as needed.
func (o *OS) Write(fdn int64, b []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.fds[fdn]
	if !ok {
		return 0, fmt.Errorf("vsys: write of bad fd %d", fdn)
	}
	switch f.kind {
	case FDFile:
		end := f.pos + int64(len(b))
		if end > int64(len(f.file.Data)) {
			grown := make([]byte, end)
			copy(grown, f.file.Data)
			f.file.Data = grown
		}
		copy(f.file.Data[f.pos:end], b)
		f.pos = end
		return len(b), nil
	case FDSocket:
		f.sock.sent += int64(len(b))
		return len(b), nil
	}
	return 0, fmt.Errorf("vsys: write of unknown fd kind")
}

// Lseek repositions a file descriptor.
func (o *OS) Lseek(fdn, off, whence int64) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.fds[fdn]
	if !ok || f.kind != FDFile {
		return -1, fmt.Errorf("vsys: lseek of bad fd %d", fdn)
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.pos
	case SeekEnd:
		base = int64(len(f.file.Data))
	default:
		return -1, fmt.Errorf("vsys: bad whence %d", whence)
	}
	if base+off < 0 {
		return -1, fmt.Errorf("vsys: negative seek")
	}
	f.pos = base + off
	return f.pos, nil
}

// DupFD implements fcntl(F_DUPFD).
func (o *OS) DupFD(fdn int64) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	src, ok := o.fds[fdn]
	if !ok {
		return -1, fmt.Errorf("vsys: dup of bad fd %d", fdn)
	}
	n, err := o.allocFD()
	if err != nil {
		return -1, err
	}
	dup := *src
	o.fds[n] = &dup
	return n, nil
}

// Fork models fork(2): it allocates a child pid. The runtime treats it as
// irrevocable and closes the epoch before invoking it.
func (o *OS) Fork() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pid + 1 + o.entropy.Int63n(1000)
}

// Positions captures every open file descriptor's position — the per-epoch
// checkpoint state for revocable IO (§3.1).
func (o *OS) Positions() map[int64]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[int64]int64, len(o.fds))
	for n, f := range o.fds {
		if f.kind == FDFile {
			out[n] = f.pos
		}
	}
	return out
}

// RestorePositions re-seeks every still-open descriptor to its checkpointed
// position (rollback, §3.4: lseek with SEEK_SET on every descriptor).
func (o *OS) RestorePositions(pos map[int64]int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for n, p := range pos {
		if f, ok := o.fds[n]; ok && f.kind == FDFile {
			f.pos = p
		}
	}
}

// FDState is one open file descriptor's checkpointed identity: which VFS
// file it refers to and its position.
type FDState struct {
	FD   int64
	Path string
	Pos  int64
}

// State is the virtual filesystem's checkpoint: file contents plus the open
// file-descriptor table. It is what a mid-trace replay resume needs beyond
// the recorded event log — revocable IO re-issues against these files at
// these positions. Socket descriptors are excluded: socket IO is recordable
// and replays from the log without touching the descriptor table.
type State struct {
	Files []File
	FDs   []FDState
}

// CheckpointState deep-copies the VFS for a persisted checkpoint. Files are
// emitted sorted by name and descriptors ascending, so the state is
// encode-stable. Call only while the world is quiescent.
func (o *OS) CheckpointState() *State {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := &State{}
	names := make([]string, 0, len(o.files))
	for n := range o.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := o.files[n]
		st.Files = append(st.Files, File{Name: n, Data: append([]byte(nil), f.Data...)})
	}
	fdns := make([]int64, 0, len(o.fds))
	for n, f := range o.fds {
		if f.kind == FDFile {
			fdns = append(fdns, n)
		}
	}
	sort.Slice(fdns, func(i, j int) bool { return fdns[i] < fdns[j] })
	for _, n := range fdns {
		f := o.fds[n]
		st.FDs = append(st.FDs, FDState{FD: n, Path: f.file.Name, Pos: f.pos})
	}
	return st
}

// RestoreState replaces the VFS contents and file-descriptor table with a
// checkpointed state (mid-trace replay resume). Existing files and file
// descriptors are discarded; st is not retained.
func (o *OS) RestoreState(st *State) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.files = make(map[string]*File, len(st.Files))
	for _, f := range st.Files {
		o.files[f.Name] = &File{Name: f.Name, Data: append([]byte(nil), f.Data...)}
	}
	for n, f := range o.fds {
		if f.kind == FDFile {
			delete(o.fds, n)
		}
	}
	for _, fs := range st.FDs {
		f, ok := o.files[fs.Path]
		if !ok {
			return fmt.Errorf("vsys: checkpointed fd %d refers to unknown file %q", fs.FD, fs.Path)
		}
		if fs.FD < 3 || fs.FD >= int64(o.maxFDs) {
			return fmt.Errorf("vsys: checkpointed fd %d out of range", fs.FD)
		}
		o.fds[fs.FD] = &fd{kind: FDFile, file: f, pos: fs.Pos}
	}
	return nil
}

// OpenFDs lists open descriptors in ascending order (diagnostics, tests).
func (o *OS) OpenFDs() []int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]int64, 0, len(o.fds))
	for n := range o.fds {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SyscallName returns a mnemonic for diagnostics.
func SyscallName(num int64) string {
	switch num {
	case SysGetpid:
		return "getpid"
	case SysGettimeofday:
		return "gettimeofday"
	case SysOpen:
		return "open"
	case SysClose:
		return "close"
	case SysRead:
		return "read"
	case SysWrite:
		return "write"
	case SysLseek:
		return "lseek"
	case SysSocket:
		return "socket"
	case SysMmap:
		return "mmap"
	case SysMunmap:
		return "munmap"
	case SysFork:
		return "fork"
	case SysExecve:
		return "execve"
	case SysFcntl:
		return "fcntl"
	case SysRand:
		return "rand"
	}
	return fmt.Sprintf("sys(%d)", num)
}
