package vsys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newOS() *OS { return New(1234, 42) }

func TestFDReuseHazard(t *testing.T) {
	// The paper's open(1)/close(1)/open(2) example: with immediate close,
	// the second open reuses the first descriptor — which is why close must
	// be deferred for identical in-situ replay.
	o := newOS()
	fd1, err := o.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(fd1); err != nil {
		t.Fatal(err)
	}
	fd2, err := o.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	if fd1 != fd2 {
		t.Fatalf("lowest-free allocation expected reuse: fd1=%d fd2=%d", fd1, fd2)
	}
	// With close deferred (not issued), the second open gets a fresh fd.
	o2 := newOS()
	fd1, _ = o2.Open("a")
	fd2, _ = o2.Open("b")
	if fd1 == fd2 {
		t.Fatal("without close, descriptors must differ")
	}
}

func TestFileReadWriteAndPositions(t *testing.T) {
	o := newOS()
	o.AddFile("data", []byte("hello world"))
	fd, err := o.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Read(fd, 5)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read = %q, %v", b, err)
	}
	pos := o.Positions()
	if pos[fd] != 5 {
		t.Fatalf("pos = %d", pos[fd])
	}
	// Read to EOF.
	b, _ = o.Read(fd, 100)
	if string(b) != " world" {
		t.Fatalf("read2 = %q", b)
	}
	if b, _ := o.Read(fd, 10); b != nil {
		t.Fatalf("read at EOF = %q", b)
	}
	// Restore positions and re-read: identical data (revocable replay).
	o.RestorePositions(pos)
	b, _ = o.Read(fd, 6)
	if string(b) != " world" {
		t.Fatalf("re-read = %q", b)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	o := newOS()
	fd, _ := o.Open("new")
	n, err := o.Write(fd, []byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	o.Write(fd, []byte("def"))
	data, ok := o.FileData("new")
	if !ok || !bytes.Equal(data, []byte("abcdef")) {
		t.Fatalf("file = %q", data)
	}
	// Re-issuing the same writes after position restore is idempotent — the
	// property revocable classification depends on.
	o.RestorePositions(map[int64]int64{fd: 0})
	o.Write(fd, []byte("abc"))
	o.Write(fd, []byte("def"))
	data, _ = o.FileData("new")
	if !bytes.Equal(data, []byte("abcdef")) {
		t.Fatalf("after replayed writes: %q", data)
	}
}

func TestLseek(t *testing.T) {
	o := newOS()
	o.AddFile("f", []byte("0123456789"))
	fd, _ := o.Open("f")
	p, err := o.Lseek(fd, 4, SeekSet)
	if err != nil || p != 4 {
		t.Fatalf("seek = %d, %v", p, err)
	}
	b, _ := o.Read(fd, 2)
	if string(b) != "45" {
		t.Fatalf("read = %q", b)
	}
	if p, _ := o.Lseek(fd, -2, SeekEnd); p != 8 {
		t.Fatalf("seek end = %d", p)
	}
	if _, err := o.Lseek(fd, -100, SeekSet); err == nil {
		t.Fatal("negative seek must fail")
	}
}

func TestSocketStreamIsNondeterministicAcrossSockets(t *testing.T) {
	o := newOS()
	fd1, _ := o.Socket()
	fd2, _ := o.Socket()
	b1, _ := o.Read(fd1, 64)
	b2, _ := o.Read(fd2, 64)
	if bytes.Equal(b1, b2) {
		t.Fatal("distinct peers should produce distinct streams")
	}
	if n, err := o.Write(fd1, []byte("req")); n != 3 || err != nil {
		t.Fatalf("socket write = %d, %v", n, err)
	}
}

func TestClassification(t *testing.T) {
	o := newOS()
	ffd, _ := o.Open("f")
	sfd, _ := o.Socket()
	cases := []struct {
		name string
		num  int64
		args []uint64
		want Class
	}{
		{"getpid", SysGetpid, nil, Repeatable},
		{"gettimeofday", SysGettimeofday, nil, Recordable},
		{"rand", SysRand, nil, Recordable},
		{"open", SysOpen, nil, Recordable},
		{"file read", SysRead, []uint64{uint64(ffd)}, Revocable},
		{"file write", SysWrite, []uint64{uint64(ffd)}, Revocable},
		{"socket read", SysRead, []uint64{uint64(sfd)}, Recordable},
		{"socket write", SysWrite, []uint64{uint64(sfd)}, Recordable},
		{"close", SysClose, []uint64{uint64(ffd)}, Deferrable},
		{"munmap", SysMunmap, nil, Deferrable},
		{"fork", SysFork, nil, Irrevocable},
		{"execve", SysExecve, nil, Irrevocable},
		{"lseek reposition", SysLseek, []uint64{uint64(ffd), 4, uint64(SeekSet)}, Irrevocable},
		{"lseek query", SysLseek, []uint64{uint64(ffd), 0, uint64(SeekCur)}, Repeatable},
		{"fcntl getown", SysFcntl, []uint64{uint64(ffd), uint64(FGetOwn)}, Repeatable},
		{"fcntl dupfd", SysFcntl, []uint64{uint64(ffd), uint64(FDupFD)}, Recordable},
	}
	for _, tc := range cases {
		if got := o.Classify(tc.num, tc.args); got != tc.want {
			t.Errorf("%s: class = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFDLimitAndRaise(t *testing.T) {
	o := newOS()
	if o.FDLimit() != DefaultMaxFDs {
		t.Fatalf("default limit = %d", o.FDLimit())
	}
	var fds []int64
	for {
		fd, err := o.Open("x")
		if err != nil {
			break
		}
		fds = append(fds, fd)
	}
	if len(fds) != DefaultMaxFDs-3 {
		t.Fatalf("opened %d fds before limit", len(fds))
	}
	o.RaiseFDLimit(128)
	if _, err := o.Open("y"); err != nil {
		t.Fatalf("open after raise: %v", err)
	}
	// Raising to a smaller value is a no-op.
	o.RaiseFDLimit(8)
	if o.FDLimit() != 128 {
		t.Fatalf("limit lowered to %d", o.FDLimit())
	}
}

func TestDupFD(t *testing.T) {
	o := newOS()
	o.AddFile("f", []byte("xyz"))
	fd, _ := o.Open("f")
	o.Read(fd, 1)
	dup, err := o.DupFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	if dup == fd {
		t.Fatal("dup must be a fresh descriptor")
	}
	b, _ := o.Read(dup, 1)
	if string(b) != "y" {
		t.Fatalf("dup position not inherited: %q", b)
	}
}

func TestGettimeofdayAdvances(t *testing.T) {
	o := newOS()
	t1 := o.Gettimeofday()
	t2 := o.Gettimeofday()
	if t2 <= t1 {
		t.Fatalf("clock must advance: %d then %d", t1, t2)
	}
}

func TestCloseErrors(t *testing.T) {
	o := newOS()
	if err := o.Close(99); err == nil {
		t.Fatal("closing unopened fd must fail")
	}
	if _, err := o.Read(99, 1); err == nil {
		t.Fatal("reading bad fd must fail")
	}
	if _, err := o.Write(99, []byte("x")); err == nil {
		t.Fatal("writing bad fd must fail")
	}
}

// Property: after any in-bounds sequence of reads, restoring positions and
// re-reading yields identical data (the revocable-replay invariant).
func TestQuickRevocableReplay(t *testing.T) {
	f := func(content []byte, sizes []uint8) bool {
		if len(content) == 0 {
			content = []byte{1}
		}
		o := newOS()
		o.AddFile("f", content)
		fd, _ := o.Open("f")
		pos := o.Positions()
		var first [][]byte
		for _, s := range sizes {
			b, err := o.Read(fd, int(s%32)+1)
			if err != nil {
				return false
			}
			first = append(first, b)
		}
		o.RestorePositions(pos)
		for i, s := range sizes {
			b, err := o.Read(fd, int(s%32)+1)
			if err != nil || !bytes.Equal(b, first[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRestoreState(t *testing.T) {
	o := New(1, 7)
	o.AddFile("in.txt", []byte("hello world"))
	fd, err := o.Open("in.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(fd, 6); err != nil {
		t.Fatal(err)
	}
	wfd, err := o.Open("out.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Write(wfd, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Socket(); err != nil {
		t.Fatal(err)
	}

	st := o.CheckpointState()
	if len(st.Files) != 2 || len(st.FDs) != 2 {
		t.Fatalf("state = %d files, %d fds", len(st.Files), len(st.FDs))
	}

	// A fresh OS restored from the state resumes identically: same file
	// contents, same descriptors at the same positions.
	o2 := New(1, 99)
	o2.RaiseFDLimit(4096)
	if err := o2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	b, err := o2.Read(fd, 5)
	if err != nil || string(b) != "world" {
		t.Fatalf("restored read = %q, %v", b, err)
	}
	data, ok := o2.FileData("out.txt")
	if !ok || string(data) != "abc" {
		t.Fatalf("restored out.txt = %q, %v", data, ok)
	}

	// The capture is a deep copy: mutating the original afterwards must not
	// leak into the state.
	o.Write(wfd, []byte("MORE"))
	if string(st.Files[1].Data) != "abc" {
		t.Fatalf("checkpoint state aliased live file data: %q", st.Files[1].Data)
	}

	// A descriptor referring to an unknown file is rejected.
	bad := &State{FDs: []FDState{{FD: 5, Path: "nope", Pos: 0}}}
	if err := o2.RestoreState(bad); err == nil {
		t.Fatal("restore with dangling fd accepted")
	}
}
