// Command ir-vet runs the repo's custom static-analysis suite — the
// compile-time enforcement of the runtime's determinism and concurrency
// invariants (see docs/STATIC_ANALYSIS.md).
//
// Standalone, over package patterns:
//
//	ir-vet ./...
//	ir-vet -analyzers detpure,obsconst ./internal/...
//
// or as a vettool, sharing the go command's build graph and cache:
//
//	go vet -vettool=$(which ir-vet) ./...
//
// Exit status: 0 clean, 1 usage or load error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vettools before use: -V=full must print a
	// version line incorporating the tool's identity (it keys vet's result
	// cache), and -flags must enumerate supported flags as JSON.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			fmt.Printf("ir-vet version 1 buildID=%s\n", selfID())
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("ir-vet", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list analyzers and exit")
		only      = fs.String("analyzers", "", "comma-separated subset of analyzers to run")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as JSON (standalone mode)")
		withTests = fs.Bool("tests", true, "analyze _test.go files (standalone mode)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ir-vet [flags] [package patterns]\n       ir-vet <vet.cfg>   (invoked by go vet -vettool)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers := vet.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*vet.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(os.Stderr, "ir-vet: unknown analyzer %q (try -list)\n", name)
			}
			return 1
		}
		analyzers = sel
	}

	rest := fs.Args()

	// Vettool mode: the go command hands us a single JSON config whose
	// name ends in .cfg.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vet.RunUnit(rest[0], analyzers, os.Stderr)
	}

	// Standalone mode.
	pkgs, err := vet.Load(vet.LoadConfig{Patterns: rest, Tests: *withTests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ir-vet: %v\n", err)
		return 1
	}
	diags, err := vet.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ir-vet: %v\n", err)
		return 1
	}
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// selfID hashes the executable so the go command's vet cache invalidates
// when the tool changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
