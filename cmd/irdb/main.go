// Command irdb runs a program under iReplayer with the interactive debugger
// attached (§4.3): on a segmentation fault or abort the session opens, and
// the user can inspect threads, arm watchpoints, and roll the program back
// to the last epoch boundary for in-situ re-execution.
//
//	irdb -app crasher          # debug the racy Crasher program
//	irdb -app sqlite -implant  # any evaluated app, with an implanted overflow
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "crasher", "program to debug: crasher or an evaluated app name")
	implant := flag.Bool("implant", false, "implant a buffer overflow at the end of main")
	breakEnd := flag.Bool("break-at-end", false, "open a session at normal program end too")
	flag.Parse()

	var mod *core.Runtime
	d := debug.New(os.Stdin, os.Stdout)
	d.BreakOnEnd = *breakEnd

	build := func() (*core.Runtime, error) {
		if *app == "crasher" {
			return core.New(workloads.DefaultCrasher().Build(), d.Options())
		}
		spec, err := workloads.ByNameStrict(*app)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irdb: %v (plus: crasher)\n", err)
			fmt.Fprintln(os.Stderr, "usage: irdb -app <name> [-implant] [-break-at-end]")
			os.Exit(2)
		}
		m, err := spec.Build()
		if err != nil {
			return nil, err
		}
		if *implant {
			m = workloads.ImplantOverflow(m)
		}
		rt, err := core.New(m, d.Options())
		if err != nil {
			return nil, err
		}
		spec.SetupOS(rt.OS())
		return rt, nil
	}

	rt, err := build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mod = rt
	rep, err := mod.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "program failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("program finished: exit=%d epochs=%d replays=%d\n",
		rep.Exit, rep.Stats.Epochs, rep.Stats.Replays)
}
