// Command ir-trace records evaluated applications into persistent trace
// files, replays them offline, and runs replay-time analyses over them —
// the record-once / replay-and-analyze-many workflow the in-memory runtime
// alone cannot offer:
//
//	ir-trace record -app pfscan -dir ./traces          # run + persist
//	ir-trace record -app pfscan -checkpoint-every 2    # + checkpoint frames
//	ir-trace ls -dir ./traces                          # inventory (footer-read)
//	ir-trace ls -dir ./traces -json                    # machine-readable
//	ir-trace replay -name pfscan -dir ./traces         # one offline replay
//	ir-trace replay -name pfscan -n 16 -workers 4      # parallel fan-out
//	ir-trace replay -name pfscan -segments -workers 4  # segment-parallel
//	ir-trace verify -name pfscan -dir ./traces         # replay + compare
//	ir-trace analyze -name race-counter -dir ./traces  # race+leak analysis
//	ir-trace analyze -all -workers 4 -json             # whole store, JSON
//	ir-trace compact -name pfscan -dir ./traces        # compress in place
//	ir-trace gc -dir ./traces -max-mb 512 -max-age 72h # retention (pins exempt)
//	ir-trace pin -name pfscan; ir-trace rm -name old   # lifecycle
//	ir-trace salvage -name pfscan -dir ./traces        # recover a crashed ring
//	ir-trace timeline -name pfscan -o t.json           # Chrome trace timeline
//
// Traces are stored one file per recording ("<name>.irt"), indexed by the
// recorded module's fingerprint; replay rebuilds the named workload, checks
// the fingerprint, and re-executes through the divergence-checking replay
// path. Both the evaluated applications and the analysis ground-truth
// corpus (racy/leaky programs with known defects) are recordable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "rm":
		err = cmdRm(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "pin":
		err = cmdPin(os.Args[2:], true)
	case "unpin":
		err = cmdPin(os.Args[2:], false)
	case "salvage":
		err = cmdSalvage(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ir-trace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ir-trace <record|replay|ls|verify|analyze|compact|rm|gc|pin|unpin|salvage|timeline> [flags]

  record   -app NAME [-name N] [-dir D] [-scale S] [-seed N] [-eventcap N] [-checkpoint-every N] [-keyframe-every K] [-compress] [-flight N]
  replay   -name N [-dir D] [-n COPIES] [-workers W] [-max-replays N] [-delay] [-segments]
  ls       [-dir D] [-json]
  verify   -name N [-dir D]
  analyze  -name N | -all [-dir D] [-analyzers race,leak] [-segments] [-workers W] [-json]
  compact  -name N [-dir D] [-keyframe-every K]   rewrite compressed + re-keyframed, in place
  rm       -name N [-dir D]                       delete a stored trace (and its pin)
  gc       [-dir D] [-max-mb N] [-max-age DUR]    enforce a retention policy (pins exempt)
  pin      -name N [-dir D]                       shield a trace from gc
  unpin    -name N [-dir D]
  salvage  -name N [-dir D] [-as NAME]            recover a crashed run's flight-recorder ring
  timeline -name N [-dir D] [-workers W] [-o F]   segment-replay with span capture; Chrome trace JSON

known apps:
`)
	for _, name := range workloads.Names() {
		fmt.Fprintf(os.Stderr, "  %s\n", name)
	}
	fmt.Fprint(os.Stderr, "analysis ground-truth corpus:\n")
	for _, name := range workloads.AnalysisNames() {
		fmt.Fprintf(os.Stderr, "  %s\n", name)
	}
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "", "application to record (see ir-trace help)")
	name := fs.String("name", "", "trace name (default: the app name)")
	dir := fs.String("dir", "traces", "trace store directory")
	scale := fs.Float64("scale", 1.0, "iteration scale")
	seed := fs.Int64("seed", 42, "external-nondeterminism seed")
	eventCap := fs.Int("eventcap", 0, "per-thread event list size (0 = default)")
	ckptEvery := fs.Int("checkpoint-every", 0,
		"persist a checkpoint frame every N epochs (0 = none); checkpointed traces replay segment-parallel")
	keyEvery := fs.Int("keyframe-every", 0,
		"make every K-th checkpoint frame a full-image keyframe (0 = writer default)")
	compress := fs.Bool("compress", false,
		"deflate epoch and checkpoint frame bodies as they are written (format v4)")
	flightN := fs.Int("flight", 0,
		"flight-recorder mode: retain roughly the last N epochs in a bounded ring and store only that suffix (0 = record the whole run)")
	fs.Parse(args)
	if *app == "" {
		return fmt.Errorf("record: -app is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := server.RecordTrace(st, server.RecordRequest{
		App:             *app,
		Name:            *name,
		Scale:           *scale,
		Seed:            *seed,
		EventCap:        *eventCap,
		CheckpointEvery: *ckptEvery,
		KeyframeEvery:   *keyEvery,
		Compress:        *compress,
		FlightEpochs:    *flightN,
	}, nil)
	if err != nil {
		return err
	}
	if res.Fault != "" {
		// A faulting run still leaves a valid trace (the bug-reproduction
		// use case); report both.
		fmt.Printf("recorded %s with fault: %s\n", res.Trace, res.Fault)
	}
	if res.Suffix {
		fmt.Printf("recorded %s: suffix of %d epochs (from epoch %d), %d bytes, exit=%d, wall=%v -> %s\n",
			res.Trace, res.Epochs, res.FirstEpoch, res.Bytes, res.Exit,
			time.Since(start).Round(time.Millisecond), res.Path)
		return nil
	}
	fmt.Printf("recorded %s: %d epochs, %d checkpoints (%d keyframes), %d bytes, exit=%d, wall=%v -> %s\n",
		res.Trace, res.Epochs, res.Checkpoints, res.Keyframes, res.Bytes, res.Exit,
		time.Since(start).Round(time.Millisecond), res.Path)
	return nil
}

// loadJob resolves a stored trace back to a runnable replay job through the
// service layer's resolver — the same path ir-served jobs take.
func loadJob(st *trace.Store, name string, opts core.Options) (trace.Job, error) {
	return server.ResolveJob(st, name, opts)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	name := fs.String("name", "", "trace name to replay")
	dir := fs.String("dir", "traces", "trace store directory")
	n := fs.Int("n", 1, "number of parallel re-replays")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxReplays := fs.Int("max-replays", 0, "divergence search bound (0 = default)")
	delay := fs.Bool("delay", true, "randomized delays on divergence retries")
	segments := fs.Bool("segments", false,
		"split the trace at its checkpoint frames and replay the segments in parallel, verifying by stitching")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("replay: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	job, err := loadJob(st, *name, core.Options{
		MaxReplays: *maxReplays, DelayOnDivergence: *delay,
	})
	if err != nil {
		return err
	}
	defer job.Handle.Close()
	if *segments {
		return replaySegments(job, *workers)
	}
	jobs := []trace.Job{job}
	if *n > 1 {
		jobs = trace.Fanout(job, *n)
	}
	results, stats := trace.ReplayBatch(jobs, *workers)
	for _, r := range results {
		switch {
		case r.Matched && r.Err == nil:
			fmt.Printf("%-24s matched (attempts=%d, wall=%v)\n",
				r.Name, r.Report.Stats.LastReplayAttempts, r.Wall.Round(time.Millisecond))
		case r.Matched:
			fmt.Printf("%-24s matched, reproduced fault: %v\n", r.Name, r.Err)
		default:
			fmt.Printf("%-24s FAILED: %v\n", r.Name, r.Err)
		}
	}
	fmt.Printf("batch: %d/%d matched, %d events replayed, work=%v elapsed=%v (x%.1f)\n",
		stats.Matched, stats.Jobs, stats.Events,
		stats.Work.Round(time.Millisecond), stats.Elapsed.Round(time.Millisecond),
		float64(stats.Work)/float64(stats.Elapsed+1))
	if stats.Failed > 0 {
		return fmt.Errorf("%d replay(s) failed to match", stats.Failed)
	}
	return nil
}

// replaySegments is the -segments arm of cmdReplay: checkpoint-split
// parallel replay of one trace with stitching verification.
func replaySegments(job trace.Job, workers int) error {
	if job.Handle.NumCheckpoints() == 0 {
		fmt.Printf("%s: no checkpoint frames (record with -checkpoint-every); replaying as one segment\n", job.Name)
	}
	results, stats, err := trace.ReplaySegments(job, workers)
	for _, r := range results {
		switch {
		case r.Matched && r.Err == nil:
			fmt.Printf("%-28s matched (attempts=%d, wall=%v)\n",
				r.Name, r.Report.Stats.LastReplayAttempts, r.Wall.Round(time.Millisecond))
		case r.Matched:
			fmt.Printf("%-28s matched, reproduced fault: %v\n", r.Name, r.Err)
		default:
			fmt.Printf("%-28s FAILED: %v\n", r.Name, r.Err)
		}
	}
	fmt.Printf("segments: %d/%d stitched, %d events replayed, work=%v elapsed=%v (x%.1f)\n",
		stats.Matched, stats.Jobs, stats.Events,
		stats.Work.Round(time.Millisecond), stats.Elapsed.Round(time.Millisecond),
		float64(stats.Work)/float64(stats.Elapsed+1))
	if err != nil {
		return fmt.Errorf("segment replay: %w", err)
	}
	return nil
}

// cmdAnalyze fans replay-time analyses across stored traces in parallel.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	name := fs.String("name", "", "trace to analyze (or -all)")
	all := fs.Bool("all", false, "analyze every complete trace in the store")
	dir := fs.String("dir", "traces", "trace store directory")
	spec := fs.String("analyzers", "race,leak", "comma-separated analyzer list (race, leak, profile)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxReplays := fs.Int("max-replays", 0, "divergence search bound (0 = default)")
	delay := fs.Bool("delay", true, "randomized delays on divergence retries")
	segmented := fs.Bool("segments", false,
		"segment-parallel analysis: split each trace at its checkpoint frames (-workers sizes the segment pool)")
	asJSON := fs.Bool("json", false, "emit machine-readable findings on stdout")
	fs.Parse(args)
	if *name == "" && !*all {
		return fmt.Errorf("analyze: -name or -all is required")
	}
	if _, err := analysis.FromSpec(*spec); err != nil {
		return err // validate the analyzer list before any replay work
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	var names []string
	if *all {
		entries, err := st.List()
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.Header.App != "" && e.Complete {
				names = append(names, e.Name)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("analyze: no complete traces in %s", st.Dir())
		}
	} else {
		names = []string{*name}
	}

	jobs := make([]trace.AnalyzeJob, 0, len(names))
	for _, n := range names {
		job, err := loadJob(st, n, core.Options{
			MaxReplays: *maxReplays, DelayOnDivergence: *delay,
		})
		if err != nil {
			return err
		}
		defer job.Handle.Close()
		jobs = append(jobs, trace.AnalyzeJob{
			Job: job,
			NewAnalyzers: func() []analysis.Analyzer {
				az, _ := analysis.FromSpec(*spec) // validated above
				return az
			},
		})
	}
	var results []trace.AnalyzeResult
	var stats trace.BatchStats
	if *segmented {
		// Segment parallelism lives inside each trace, so traces run in
		// sequence and -workers sizes the per-trace segment pool.
		start := time.Now()
		for i := range jobs {
			res, sstats, err := trace.AnalyzeSegments(jobs[i], *workers)
			if err != nil {
				return fmt.Errorf("analyze %s: %w", jobs[i].Name, err)
			}
			results = append(results, res)
			stats.Jobs++
			stats.Work += sstats.Work
			stats.Events += sstats.Events
			stats.Attempts += sstats.Attempts
			if res.Matched {
				stats.Matched++
			} else {
				stats.Failed++
			}
		}
		stats.Elapsed = time.Since(start)
	} else {
		results, stats = trace.AnalyzeBatch(jobs, *workers)
	}

	if *asJSON {
		type jsonResult struct {
			Name     string                     `json:"name"`
			Matched  bool                       `json:"matched"`
			Error    string                     `json:"error,omitempty"`
			Findings []analysis.Finding         `json:"findings"`
			Segments []trace.SegmentAttribution `json:"segments,omitempty"`
		}
		out := make([]jsonResult, len(results))
		for i, r := range results {
			out[i] = jsonResult{Name: r.Name, Matched: r.Matched,
				Findings: r.Findings, Segments: r.Segments}
			if r.Err != nil {
				out[i].Error = r.Err.Error()
			}
			if out[i].Findings == nil {
				out[i].Findings = []analysis.Finding{}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			switch {
			case !r.Matched:
				fmt.Printf("%-24s FAILED: %v\n", r.Name, r.Err)
				continue
			case r.Err != nil:
				fmt.Printf("%-24s matched (reproduced fault: %v), %d finding(s)\n",
					r.Name, r.Err, len(r.Findings))
			default:
				fmt.Printf("%-24s matched, %d finding(s) (wall=%v)\n",
					r.Name, len(r.Findings), r.Wall.Round(time.Millisecond))
			}
			for _, f := range r.Findings {
				fmt.Print(f)
			}
			for _, at := range r.Segments {
				fmt.Printf("  seg %-3d epochs %4d-%-4d %7d events  wall=%-8v fold=%v decode=%v exec=%v merge=%v\n",
					at.Seg, at.FirstEpoch, at.LastEpoch, at.Events,
					at.Wall.Round(time.Microsecond), at.Fold.Round(time.Microsecond),
					at.Decode.Round(time.Microsecond), at.Exec.Round(time.Microsecond),
					at.Merge.Round(time.Microsecond))
			}
		}
		fmt.Printf("batch: %d/%d analyzed, %d events re-executed, work=%v elapsed=%v (x%.1f)\n",
			stats.Matched, stats.Jobs, stats.Events,
			stats.Work.Round(time.Millisecond), stats.Elapsed.Round(time.Millisecond),
			float64(stats.Work)/float64(stats.Elapsed+1))
	}
	if stats.Failed > 0 {
		return fmt.Errorf("%d analysis replay(s) failed to match", stats.Failed)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "traces", "trace store directory")
	asJSON := fs.Bool("json", false, "emit machine-readable entries on stdout")
	fs.Parse(args)
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	if *asJSON {
		// The JSON shape is the daemon's (server.TraceEntry), so the CLI and
		// GET /api/v1/traces cannot drift.
		out := make([]server.TraceEntry, len(entries))
		for i, e := range entries {
			out[i] = server.NewTraceEntry(e)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	if len(entries) == 0 {
		fmt.Printf("no traces in %s\n", st.Dir())
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tAPP\tMODULE\tVER\tEPOCHS\tEVENTS\tCKPTS\tKEYS\tBYTES\tCOMPLETE")
	for _, e := range entries {
		if e.Err != nil {
			fmt.Fprintf(tw, "%s\t(unreadable: %v)\t-\t-\t-\t-\t-\t-\t-\t-\n", e.Name, e.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%016x\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			e.Name, e.Header.App, e.Header.ModuleHash, e.Header.Version,
			e.Epochs, e.Events, e.Checkpoints, e.Keyframes, e.Size, e.Complete)
	}
	return tw.Flush()
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	name := fs.String("name", "", "trace name to verify")
	dir := fs.String("dir", "traces", "trace store directory")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("verify: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	// Resolve through the footer (or scan) and then decode every frame:
	// the full CRC pass over the file's contents, validated against the
	// index when one is present.
	job, err := loadJob(st, *name, core.Options{DelayOnDivergence: true})
	if err != nil {
		return err
	}
	defer job.Handle.Close()
	if _, err := job.Handle.Trace(); err != nil {
		return fmt.Errorf("integrity: %v", err)
	}
	if job.Handle.Summary() == nil {
		fmt.Printf("%s: incomplete trace (no summary frame); replaying best-effort\n", *name)
	}
	results, _ := trace.ReplayBatch([]trace.Job{job}, 1)
	r := results[0]
	if !r.Matched {
		return fmt.Errorf("verify %s: %v", *name, r.Err)
	}
	how := "scanned"
	if job.Handle.Indexed() {
		how = "indexed"
	}
	fmt.Printf("%s: OK — %d epochs, %d events (%s), schedule reproduced (attempts=%d)",
		*name, job.Handle.NumEpochs(), job.Handle.EventCount(), how, r.Report.Stats.LastReplayAttempts)
	if sum := job.Handle.Summary(); sum != nil && !sum.Partial {
		fmt.Printf(", exit/output match recording")
	} else if sum != nil {
		fmt.Printf(", partial summary (no end-of-run oracle)")
	}
	if r.Err != nil {
		fmt.Printf(", recorded fault reproduced (%v)", r.Err)
	}
	fmt.Println()
	return nil
}

// cmdCompact rewrites one stored trace compressed and re-keyframed, in
// place (temp+rename; concurrent readers keep the old bytes).
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	name := fs.String("name", "", "trace to compact")
	dir := fs.String("dir", "traces", "trace store directory")
	keyEvery := fs.Int("keyframe-every", 0,
		"keyframe interval of the rewritten checkpoint chain (0 = writer default)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("compact: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	start := time.Now()
	cs, err := st.Compact(*name, *keyEvery)
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d -> %d bytes (%.1f%%), %d epochs, %d checkpoints, wall=%v\n",
		*name, cs.OldBytes, cs.NewBytes, 100*float64(cs.NewBytes)/float64(cs.OldBytes),
		cs.Epochs, cs.Checkpoints, time.Since(start).Round(time.Millisecond))
	return nil
}

// cmdRm deletes one stored trace (and its pin, if any).
func cmdRm(args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	name := fs.String("name", "", "trace to delete")
	dir := fs.String("dir", "traces", "trace store directory")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("rm: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	if err := st.Remove(*name); err != nil {
		return err
	}
	fmt.Printf("removed %s\n", *name)
	return nil
}

// cmdGC runs one retention pass over the store; pinned traces are exempt.
func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := fs.String("dir", "traces", "trace store directory")
	maxMB := fs.Int64("max-mb", 0, "cap summed trace bytes at N MiB, removing oldest unpinned first (0 = unlimited)")
	maxAge := fs.Duration("max-age", 0, "remove unpinned traces not modified within this window (0 = unlimited)")
	fs.Parse(args)
	if *maxMB <= 0 && *maxAge <= 0 {
		return fmt.Errorf("gc: give at least one bound (-max-mb and/or -max-age)")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	stats, err := st.GC(trace.GCPolicy{MaxBytes: *maxMB << 20, MaxAge: *maxAge})
	if err != nil {
		return err
	}
	fmt.Printf("gc %s: scanned %d, pinned %d, removed %d (%d bytes reclaimed), %d bytes remain\n",
		st.Dir(), stats.Scanned, stats.Pinned, stats.Removed, stats.ReclaimedBytes, stats.RemainingBytes)
	return nil
}

// cmdPin pins or unpins one trace name.
func cmdPin(args []string, pin bool) error {
	verb := "pin"
	if !pin {
		verb = "unpin"
	}
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	name := fs.String("name", "", "trace name")
	dir := fs.String("dir", "traces", "trace store directory")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("%s: -name is required", verb)
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	if pin {
		err = st.Pin(*name)
	} else {
		err = st.Unpin(*name)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%sned %s\n", verb, *name)
	return nil
}

// cmdTimeline replays one trace segment-parallel with span capture and
// writes the timeline as Chrome trace-event JSON — the offline twin of the
// daemon's GET /api/v1/jobs/{id}/timeline. Load the output in
// chrome://tracing or Perfetto: one track per segment, with the
// fold/decode/execute/stitch stages nested inside each segment span.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	name := fs.String("name", "", "trace to replay")
	dir := fs.String("dir", "traces", "trace store directory")
	workers := fs.Int("workers", 0, "segment worker pool size (0 = GOMAXPROCS)")
	out := fs.String("o", "", "output file (default: stdout)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("timeline: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	job, err := loadJob(st, *name, core.Options{DelayOnDivergence: true})
	if err != nil {
		return err
	}
	defer job.Handle.Close()

	rec := obs.NewRecorder(4096)
	root := rec.Start("segment-replay/" + *name)
	job.Span = root
	_, stats, rerr := trace.ReplaySegments(job, *workers)
	root.End()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	spans, dropped := rec.Snapshot()
	if err := obs.ChromeTrace(w, spans); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timeline %s: %d/%d segments stitched, %d spans captured (%d dropped); view in chrome://tracing or Perfetto\n",
		*name, stats.Matched, stats.Jobs, len(spans), dropped)
	if rerr != nil {
		return fmt.Errorf("segment replay: %w", rerr)
	}
	return nil
}

// cmdSalvage recovers the flight-recorder ring a crashed (e.g. SIGKILLed)
// run left behind: its clean prefix becomes a stored partial-summary
// suffix trace, and the ring file is removed.
func cmdSalvage(args []string) error {
	fs := flag.NewFlagSet("salvage", flag.ExitOnError)
	name := fs.String("name", "", "ring name (the crashed run's trace name)")
	dir := fs.String("dir", "traces", "trace store directory")
	as := fs.String("as", "", "store the salvaged trace under this name (default: the ring name)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("salvage: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	out := *as
	if out == "" {
		out = *name
	}
	stats, err := flight.Salvage(flight.RingPath(st, *name), st, out)
	if err != nil {
		return err
	}
	fmt.Printf("salvaged %s: %d epochs (from epoch %d), %d bytes -> %s\n",
		out, stats.Epochs, stats.FirstEpoch, stats.Bytes, st.Path(out))
	return nil
}
