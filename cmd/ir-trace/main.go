// Command ir-trace records evaluated applications into persistent trace
// files and replays them offline — the record-once / replay-many workflow
// the in-memory runtime alone cannot offer:
//
//	ir-trace record -app pfscan -dir ./traces          # run + persist
//	ir-trace ls -dir ./traces                          # inventory
//	ir-trace replay -name pfscan -dir ./traces         # one offline replay
//	ir-trace replay -name pfscan -n 16 -workers 4      # parallel fan-out
//	ir-trace verify -name pfscan -dir ./traces         # replay + compare
//
// Traces are stored one file per recording ("<name>.irt"), indexed by the
// recorded module's fingerprint; replay rebuilds the named workload, checks
// the fingerprint, and re-executes through the divergence-checking replay
// path.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ir-trace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ir-trace <record|replay|ls|verify> [flags]

  record  -app NAME [-name N] [-dir D] [-scale S] [-seed N] [-eventcap N]
  replay  -name N [-dir D] [-n COPIES] [-workers W] [-max-replays N] [-delay]
  ls      [-dir D]
  verify  -name N [-dir D]

known apps:
`)
	for _, name := range workloads.Names() {
		fmt.Fprintf(os.Stderr, "  %s\n", name)
	}
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "", "application to record (see ir-trace help)")
	name := fs.String("name", "", "trace name (default: the app name)")
	dir := fs.String("dir", "traces", "trace store directory")
	scale := fs.Float64("scale", 1.0, "iteration scale")
	seed := fs.Int64("seed", 42, "external-nondeterminism seed")
	eventCap := fs.Int("eventcap", 0, "per-thread event list size (0 = default)")
	fs.Parse(args)
	if *app == "" {
		return fmt.Errorf("record: -app is required")
	}
	spec, ok := workloads.ByName(*app)
	if !ok {
		return fmt.Errorf("record: unknown app %q (run `ir-trace help` for the list)", *app)
	}
	if *scale != 1.0 {
		spec.Iters = int(float64(spec.Iters) * *scale)
		if spec.Iters < 3 {
			spec.Iters = 3
		}
	}
	if *name == "" {
		*name = spec.Name
	}
	mod, err := spec.Build()
	if err != nil {
		return err
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}

	// Stream epoch frames straight to the file as the runtime flushes them.
	f, err := st.Create(*name)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := core.Options{Seed: *seed, EventCap: *eventCap}
	w, err := trace.NewWriter(f, trace.Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   *eventCap,
		VarCap:     0,
		Seed:       *seed,
		AppIters:   spec.Iters,
	})
	if err != nil {
		return err
	}
	opts.TraceSink = w.Sink()
	rt, err := core.New(mod, opts)
	if err != nil {
		return err
	}
	spec.SetupOS(rt.OS())
	start := time.Now()
	rep, runErr := rt.Run()
	if rep == nil {
		return runErr
	}
	if err := w.Finish(&trace.Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		return err
	}
	if runErr != nil {
		// A faulting run still leaves a valid trace (the bug-reproduction
		// use case); report both.
		fmt.Printf("recorded %s with fault: %v\n", *name, runErr)
	}
	fi, _ := f.Stat()
	fmt.Printf("recorded %s: %d epochs, %d bytes, exit=%d, wall=%v -> %s\n",
		*name, w.Epochs(), fi.Size(), rep.Exit, time.Since(start).Round(time.Millisecond),
		st.Path(*name))
	return nil
}

// loadJob resolves a stored trace back to a runnable replay job.
func loadJob(st *trace.Store, name string, opts core.Options) (trace.Job, error) {
	tr, err := st.Load(name)
	if err != nil {
		return trace.Job{}, err
	}
	spec, ok := workloads.ByName(tr.Header.App)
	if !ok {
		return trace.Job{}, fmt.Errorf("trace %s was recorded from unknown app %q", name, tr.Header.App)
	}
	// The header records the iteration count the module was built with;
	// older traces without it fall back to a fingerprint search over
	// iteration scales (the only module-shaping knob the recorder exposes).
	if tr.Header.AppIters > 0 {
		spec.Iters = tr.Header.AppIters
	}
	mod, err := buildMatching(spec, tr.Header.ModuleHash)
	if err != nil {
		return trace.Job{}, fmt.Errorf("trace %s: %v", name, err)
	}
	opts.Seed = tr.Header.Seed
	opts.EventCap = tr.Header.EventCap
	return trace.Job{
		Name: name, Module: mod, Trace: tr, Opts: opts,
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}, nil
}

// buildMatching finds the iteration count whose module matches hash: the
// spec's iteration knob is the only module-shaping parameter the record
// subcommand exposes.
func buildMatching(spec workloads.Spec, hash uint64) (*tir.Module, error) {
	mod, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if hash == 0 || tir.Fingerprint(mod) == hash {
		return mod, nil
	}
	base := spec
	for iters := 3; iters <= base.Iters*4+16; iters++ {
		s := base
		s.Iters = iters
		m, err := s.Build()
		if err != nil {
			return nil, err
		}
		if tir.Fingerprint(m) == hash {
			return m, nil
		}
	}
	return nil, fmt.Errorf("no iteration scale of %q matches the recorded module fingerprint %#x (recorded with different parameters?)", spec.Name, hash)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	name := fs.String("name", "", "trace name to replay")
	dir := fs.String("dir", "traces", "trace store directory")
	n := fs.Int("n", 1, "number of parallel re-replays")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxReplays := fs.Int("max-replays", 0, "divergence search bound (0 = default)")
	delay := fs.Bool("delay", true, "randomized delays on divergence retries")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("replay: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	job, err := loadJob(st, *name, core.Options{
		MaxReplays: *maxReplays, DelayOnDivergence: *delay,
	})
	if err != nil {
		return err
	}
	jobs := []trace.Job{job}
	if *n > 1 {
		jobs = trace.Fanout(job, *n)
	}
	results, stats := trace.ReplayBatch(jobs, *workers)
	for _, r := range results {
		switch {
		case r.Matched && r.Err == nil:
			fmt.Printf("%-24s matched (attempts=%d, wall=%v)\n",
				r.Name, r.Report.Stats.LastReplayAttempts, r.Wall.Round(time.Millisecond))
		case r.Matched:
			fmt.Printf("%-24s matched, reproduced fault: %v\n", r.Name, r.Err)
		default:
			fmt.Printf("%-24s FAILED: %v\n", r.Name, r.Err)
		}
	}
	fmt.Printf("batch: %d/%d matched, %d events replayed, work=%v elapsed=%v (x%.1f)\n",
		stats.Matched, stats.Jobs, stats.Events,
		stats.Work.Round(time.Millisecond), stats.Elapsed.Round(time.Millisecond),
		float64(stats.Work)/float64(stats.Elapsed+1))
	if stats.Failed > 0 {
		return fmt.Errorf("%d replay(s) failed to match", stats.Failed)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "traces", "trace store directory")
	fs.Parse(args)
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("no traces in %s\n", st.Dir())
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tAPP\tMODULE\tEPOCHS\tEVENTS\tBYTES\tCOMPLETE")
	for _, e := range entries {
		if e.Header.App == "" {
			fmt.Fprintf(tw, "%s\t(unreadable)\t-\t-\t-\t-\t-\n", e.Name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%016x\t%d\t%d\t%d\t%v\n",
			e.Name, e.Header.App, e.Header.ModuleHash, e.Epochs, e.Events, e.Size, e.Complete)
	}
	return tw.Flush()
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	name := fs.String("name", "", "trace name to verify")
	dir := fs.String("dir", "traces", "trace store directory")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("verify: -name is required")
	}
	st, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	tr, err := st.Load(*name) // CRC validation happens on decode
	if err != nil {
		return fmt.Errorf("integrity: %v", err)
	}
	if tr.Summary == nil {
		fmt.Printf("%s: incomplete trace (no summary frame); replaying best-effort\n", *name)
	}
	job, err := loadJob(st, *name, core.Options{DelayOnDivergence: true})
	if err != nil {
		return err
	}
	results, _ := trace.ReplayBatch([]trace.Job{job}, 1)
	r := results[0]
	if !r.Matched {
		return fmt.Errorf("verify %s: %v", *name, r.Err)
	}
	fmt.Printf("%s: OK — %d epochs, %d events, schedule reproduced (attempts=%d)",
		*name, len(tr.Epochs), tr.EventCount(), r.Report.Stats.LastReplayAttempts)
	if tr.Summary != nil {
		fmt.Printf(", exit/output match recording")
	}
	if r.Err != nil {
		fmt.Printf(", recorded fault reproduced (%v)", r.Err)
	}
	fmt.Println()
	return nil
}
