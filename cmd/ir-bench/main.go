// Command ir-bench regenerates the paper's evaluation tables and figures
// over the synthesized applications:
//
//	ir-bench -table 1        memory-difference identity check (§5.2)
//	ir-bench -table 2        Crasher race reproduction (§5.2.1)
//	ir-bench -table 3        recording overhead (§5.3)
//	ir-bench -figure 5       detector overhead vs AddressSanitizer (§5.4.2)
//	ir-bench -detection      bug-corpus effectiveness (§5.4.1)
//	ir-bench -all            everything
//	ir-bench -json BENCH_2.json   machine-readable perf suite (record /
//	                              replay-batch / analyze-batch / segment-replay
//	                              / serve-analyze throughput)
//
// -scale shrinks/grows the workloads, -rounds controls timing repetitions,
// and -runs sizes the Crasher experiment. -json writes ns/op, events/sec,
// and worker counts to the named file so the perf trajectory is tracked
// PR-over-PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/workloads"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1, 2, or 3")
	figure := flag.Int("figure", 0, "regenerate figure 5")
	detection := flag.Bool("detection", false, "regenerate the 5.4.1 detection table")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Float64("scale", 1.0, "workload iteration scale factor")
	rounds := flag.Int("rounds", 3, "timing repetitions per cell (median)")
	runs := flag.Int("runs", 200, "Crasher executions for table 2")
	jsonOut := flag.String("json", "", "write the machine-readable perf suite to this file (e.g. BENCH_2.json)")
	flag.Parse()

	if *all {
		*table = 0
		*figure = 0
		*detection = true
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	apps := workloads.Apps()
	if *all || *table == 1 {
		run("table1", func() error {
			rows, err := bench.Table1(apps, *scale)
			if err != nil {
				return err
			}
			bench.PrintTable1(os.Stdout, rows)
			fmt.Println("note: canneal uses ad hoc atomic synchronization; its IR column is")
			fmt.Println("expected to be nonzero until atomics are replaced (canneal-mutex):")
			fixed, err := bench.Table1([]workloads.Spec{workloads.CannealMutex()}, *scale)
			if err != nil {
				return err
			}
			bench.PrintTable1(os.Stdout, fixed)
			return nil
		})
	}
	if *all || *table == 2 {
		run("table2", func() error {
			res, err := bench.Table2(*runs, workloads.DefaultCrasher())
			if err != nil {
				return err
			}
			bench.PrintTable2(os.Stdout, res)
			return nil
		})
	}
	if *all || *table == 3 {
		run("table3", func() error {
			rows, err := bench.Table3(apps, *rounds, *scale)
			if err != nil {
				return err
			}
			bench.PrintTable3(os.Stdout, rows)
			return nil
		})
	}
	if *all || *figure == 5 {
		run("figure5", func() error {
			rows, err := bench.Figure5(apps, *rounds, *scale)
			if err != nil {
				return err
			}
			bench.PrintFigure5(os.Stdout, rows)
			return nil
		})
	}
	if *detection {
		run("detection", func() error {
			rows, err := bench.DetectionTable()
			if err != nil {
				return err
			}
			bench.PrintDetection(os.Stdout, rows)
			return nil
		})
	}
	if *jsonOut != "" {
		run("perf", func() error {
			rep, err := bench.Perf(*scale)
			if err != nil {
				return err
			}
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("perf suite: %d results -> %s\n", len(rep.Results), *jsonOut)
			return nil
		})
	}
	if !*all && *table == 0 && *figure == 0 && !*detection && *jsonOut == "" {
		flag.Usage()
		os.Exit(2)
	}
}
