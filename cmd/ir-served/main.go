// Command ir-served is the trace service daemon: it serves one trace store
// over a local HTTP/JSON API so many clients can share a machine's
// recording, replay, and analysis capacity. All work funnels through a
// priority scheduler with a bounded worker pool and bounded queue — excess
// load is refused with 429, not buffered without limit — and SIGINT/SIGTERM
// drain gracefully: intake stops, accepted jobs finish (up to
// -drain-timeout, then they are canceled), and the process exits with no
// work abandoned silently.
//
//	ir-served -dir ./traces                        # serve on :7077
//	ir-served -addr 127.0.0.1:9000 -workers 8      # bigger pool
//	ir-served -queue-depth 64 -cache-mb 128        # tighter bounds
//	ir-served -gc-max-mb 512 -gc-max-age 72h       # bounded store (pins exempt)
//
// Driving it (see docs/CLI.md for the full API):
//
//	curl -s localhost:7077/api/v1/traces
//	curl -s -X POST localhost:7077/api/v1/jobs \
//	     -d '{"kind":"record","record":{"app":"pfscan","seed":42}}'
//	curl -s -X POST localhost:7077/api/v1/jobs \
//	     -d '{"kind":"analyze","trace":"pfscan","analyzers":"race,leak"}'
//	curl -s localhost:7077/api/v1/jobs/2/stream    # watch it run
//	curl -s localhost:7077/metrics                 # queue depth, throughput
//
// Observability: structured logs go to stderr (-log-level, -log-json),
// /metrics serves the Prometheus exposition, GET /api/v1/jobs/{id}/timeline
// serves per-job Chrome trace timelines, and -debug-addr opts into a
// second listener with net/http/pprof (never on the API address). See
// docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	dir := flag.String("dir", "traces", "trace store directory")
	workers := flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queued jobs before 429 (0 = default)")
	cacheMB := flag.Int64("cache-mb", 0, "decode cache budget in MiB (0 = default 256)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for accepted jobs before canceling them")
	gcMaxMB := flag.Int64("gc-max-mb", 0,
		"retention cap on summed stored trace bytes in MiB; oldest unpinned traces go first (0 = unlimited)")
	gcMaxAge := flag.Duration("gc-max-age", 0,
		"remove unpinned traces not modified within this window (0 = unlimited)")
	gcInterval := flag.Duration("gc-interval", 0,
		"background retention pass cadence (0 = default 1m; only runs when a bound is set)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this extra address (empty = disabled)")
	noTelemetry := flag.Bool("no-telemetry", false,
		"disable span and histogram collection (series render at zero)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-served:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	if *noTelemetry {
		obs.SetEnabled(false)
	}

	cfg := server.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		GC:         trace.GCPolicy{MaxBytes: *gcMaxMB << 20, MaxAge: *gcMaxAge},
		GCInterval: *gcInterval,
	}
	if err := run(logger, *addr, *dir, *debugAddr, *cacheMB, *drainTimeout, cfg); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, addr, dir, debugAddr string, cacheMB int64,
	drainTimeout time.Duration, cfg server.Config) error {
	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	if cacheMB > 0 {
		st.SetCacheLimit(cacheMB << 20)
	}
	cfg.Store = st
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		dbg := debugServer(debugAddr)
		go func() {
			logger.Info("pprof listening", "addr", debugAddr)
			if err := dbg.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "err", err)
			}
		}()
		defer dbg.Close()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "dir", st.Dir(), "addr", addr,
			"telemetry", obs.Enabled())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err // listen failed before any signal
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	// The scheduler is down; close the listener and in-flight handlers
	// (status streams end once their jobs went terminal above).
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	<-errCh
	logger.Info("stopped")
	return nil
}

// debugServer builds the opt-in pprof listener. The profiling surface is
// registered on its own mux and address — never on the API listener — so
// exposing the service port does not expose heap dumps and CPU profiles.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux}
}
