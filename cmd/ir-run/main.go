// Command ir-run executes one evaluated application — or a textual TIR
// assembly file — under a chosen runtime configuration and reports wall time
// plus runtime statistics. It is the quick way to poke at a single Table 3
// cell, or to run hand-written programs under the recorder:
//
//	ir-run -app fluidanimate -sys iReplayer
//	ir-run -app x264 -sys CLAP -scale 0.5
//	ir-run -asm prog.tir -replay
//
// With -flight N it becomes an always-on flight recorder: the run streams
// into a bounded ring that retains roughly the last N epochs, and the
// retained suffix spills into the trace store on a fault, on SIGINT/SIGTERM,
// or (with -spill) on clean exit. A SIGKILLed run leaves the ring on disk;
// `ir-trace salvage` recovers it.
//
//	ir-run -app memcached -flight 8 -flight-dir ./traces
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var systems = map[string]bench.System{
	"baseline":  bench.SysBaseline,
	"IR-Alloc":  bench.SysIRAlloc,
	"iReplayer": bench.SysIReplayer,
	"CLAP":      bench.SysCLAP,
	"RR":        bench.SysRR,
	"detect":    bench.SysIRDetect,
	"ASan":      bench.SysASan,
}

func main() {
	app := flag.String("app", "sqlite", "application name (see internal/workloads)")
	asmFile := flag.String("asm", "", "run a .tir assembly file instead of a named app")
	replay := flag.Bool("replay", false, "with -asm: replay the final epoch and verify identity")
	sys := flag.String("sys", "iReplayer", "baseline | IR-Alloc | iReplayer | CLAP | RR | detect | ASan")
	scale := flag.Float64("scale", 1.0, "iteration scale")
	norm := flag.Bool("normalized", false, "also report runtime normalized to baseline")
	seed := flag.Int64("seed", 42, "external-nondeterminism seed")
	eventCap := flag.Int("eventcap", 0, "per-thread event list size (0 = default)")
	flightN := flag.Int("flight", 0,
		"flight-recorder mode: retain roughly the last N epochs in a bounded on-disk ring, spilling a replayable suffix to -flight-dir on fault or signal (0 = off)")
	flightDir := flag.String("flight-dir", "traces", "trace store the flight recorder spills into")
	flightName := flag.String("flight-name", "", "trace name for the spill (default: the app name)")
	spill := flag.Bool("spill", false, "with -flight: spill the retained suffix on clean exit too")
	logLevel := flag.String("log-level", "info", "stderr diagnostic verbosity: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit stderr diagnostics as JSON lines")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-run:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	if *asmFile != "" {
		if err := runAsm(*asmFile, *replay); err != nil {
			logger.Error("asm run failed", "file", *asmFile, "err", err)
			os.Exit(1)
		}
		return
	}

	spec, err := workloads.ByNameStrict(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-run:", err)
		os.Exit(2)
	}
	system, ok := systems[*sys]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *sys)
		os.Exit(2)
	}
	if *scale != 1.0 {
		spec.Iters = int(float64(spec.Iters) * *scale)
		if spec.Iters < 3 {
			spec.Iters = 3
		}
	}
	if *flightN > 0 {
		if err := runFlight(logger, spec, *flightDir, *flightName, *flightN, *seed, *eventCap, *spill); err != nil {
			logger.Error("flight run failed", "app", spec.Name, "err", err)
			os.Exit(1)
		}
		return
	}
	start := time.Now()
	d, err := bench.RunOnce(spec, system, *seed)
	if err != nil {
		logger.Error("run failed", "app", spec.Name, "sys", *sys, "err", err)
		os.Exit(1)
	}
	fmt.Printf("%s under %s: %v (wall %v)\n", spec.Name, *sys, d, time.Since(start))
	if *norm {
		r, err := bench.Normalized(spec, system, 3)
		if err != nil {
			logger.Error("normalize failed", "app", spec.Name, "err", err)
			os.Exit(1)
		}
		fmt.Printf("normalized runtime: %.3f\n", r)
	}
}

// runFlight runs spec with a flight recorder attached. The spill policy is
// the flight recorder's contract: a reproduced fault or a SIGINT/SIGTERM
// always spills the retained suffix (the evidence), a clean exit discards
// the ring unless -spill asked for it, and SIGKILL (which no process can
// catch) leaves the ring behind for `ir-trace salvage`.
func runFlight(logger *slog.Logger, spec workloads.Spec, dir, name string, retain int, seed int64, eventCap int, spillClean bool) error {
	mod, err := spec.Build()
	if err != nil {
		return err
	}
	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	if name == "" {
		name = spec.Name
	}
	rec, err := flight.New(flight.RingPath(st, name), trace.Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   eventCap,
		Seed:       seed,
		AppIters:   spec.Iters,
	}, retain)
	if err != nil {
		return err
	}
	defer rec.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt, err := core.New(mod, core.Options{
		Seed: seed, EventCap: eventCap,
		FlightRecorder: rec,
		Interrupt:      ctx.Err,
	})
	if err != nil {
		return err
	}
	spec.SetupOS(rt.OS())

	start := time.Now()
	rep, runErr := rt.Run()
	wall := time.Since(start).Round(time.Millisecond)
	if rep == nil {
		return runErr
	}
	signaled := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))

	doSpill := func(sum *trace.Summary, why string) error {
		stats, err := rec.Spill(st, name, sum)
		if err != nil {
			return fmt.Errorf("flight spill: %w", err)
		}
		logger.Debug("flight spill", "why", why, "epochs", stats.Epochs,
			"first_epoch", stats.FirstEpoch, "bytes", stats.Bytes, "path", st.Path(name))
		fmt.Printf("flight: %s; spilled %d epochs (from epoch %d), %d bytes -> %s\n",
			why, stats.Epochs, stats.FirstEpoch, stats.Bytes, st.Path(name))
		return nil
	}
	switch {
	case signaled:
		// No exit/output oracle: the run did not finish. The suffix stores a
		// partial summary and still replays its schedule.
		if err := doSpill(nil, "interrupted by signal"); err != nil {
			return err
		}
		return nil
	case runErr != nil:
		// A reproduced fault is exactly what the flight recorder exists for.
		if err := doSpill(&trace.Summary{Exit: rep.Exit, Output: rep.Output}, "fault reproduced"); err != nil {
			return err
		}
		return fmt.Errorf("%s faulted after %v: %w", spec.Name, wall, runErr)
	case spillClean:
		if err := doSpill(&trace.Summary{Exit: rep.Exit, Output: rep.Output}, "clean exit (-spill)"); err != nil {
			return err
		}
		return nil
	default:
		fmt.Printf("flight: %s exited cleanly (exit=%d, %d epochs, wall=%v); ring discarded\n",
			spec.Name, rep.Exit, rep.Stats.Epochs, wall)
		return nil
	}
}

// runAsm assembles and executes a textual TIR program under full recording;
// with replay set it also re-executes the final epoch in-situ and verifies
// that the heap image is identical.
func runAsm(path string, replay bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	mod, err := tir.Assemble(string(src))
	if err != nil {
		return err
	}
	var img1, img2 []byte
	opts := core.Options{}
	if replay {
		opts.OnEpochEnd = func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
			if info.Reason == core.StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return core.Replay
			}
			return core.Proceed
		}
		opts.OnReplayMatched = func(rt *core.Runtime, attempts int) core.Decision {
			img2 = rt.Mem().HeapImage()
			fmt.Printf("replay matched on attempt %d\n", attempts)
			return core.Proceed
		}
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		return err
	}
	rep, err := rt.Run()
	if err != nil {
		return err
	}
	fmt.Printf("exit=%d epochs=%d replays=%d\n", rep.Exit, rep.Stats.Epochs, rep.Stats.Replays)
	if out := rep.Output; out != "" {
		fmt.Printf("output:\n%s", out)
	}
	if replay {
		if d := mem.DiffBytes(img1, img2); d == 0 {
			fmt.Println("replayed heap image is byte-identical")
		} else {
			return fmt.Errorf("replay differed in %d heap bytes", d)
		}
	}
	return nil
}
