// Command ir-run executes one evaluated application — or a textual TIR
// assembly file — under a chosen runtime configuration and reports wall time
// plus runtime statistics. It is the quick way to poke at a single Table 3
// cell, or to run hand-written programs under the recorder:
//
//	ir-run -app fluidanimate -sys iReplayer
//	ir-run -app x264 -sys CLAP -scale 0.5
//	ir-run -asm prog.tir -replay
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tir"
	"repro/internal/workloads"
)

var systems = map[string]bench.System{
	"baseline":  bench.SysBaseline,
	"IR-Alloc":  bench.SysIRAlloc,
	"iReplayer": bench.SysIReplayer,
	"CLAP":      bench.SysCLAP,
	"RR":        bench.SysRR,
	"detect":    bench.SysIRDetect,
	"ASan":      bench.SysASan,
}

func main() {
	app := flag.String("app", "sqlite", "application name (see internal/workloads)")
	asmFile := flag.String("asm", "", "run a .tir assembly file instead of a named app")
	replay := flag.Bool("replay", false, "with -asm: replay the final epoch and verify identity")
	sys := flag.String("sys", "iReplayer", "baseline | IR-Alloc | iReplayer | CLAP | RR | detect | ASan")
	scale := flag.Float64("scale", 1.0, "iteration scale")
	norm := flag.Bool("normalized", false, "also report runtime normalized to baseline")
	flag.Parse()

	if *asmFile != "" {
		if err := runAsm(*asmFile, *replay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec, ok := workloads.ByName(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q; known apps:\n", *app)
		for _, s := range workloads.Apps() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}
	system, ok := systems[*sys]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *sys)
		os.Exit(2)
	}
	if *scale != 1.0 {
		spec.Iters = int(float64(spec.Iters) * *scale)
		if spec.Iters < 3 {
			spec.Iters = 3
		}
	}
	start := time.Now()
	d, err := bench.RunOnce(spec, system, 42)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s under %s: %v (wall %v)\n", spec.Name, *sys, d, time.Since(start))
	if *norm {
		r, err := bench.Normalized(spec, system, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "normalize failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("normalized runtime: %.3f\n", r)
	}
}

// runAsm assembles and executes a textual TIR program under full recording;
// with replay set it also re-executes the final epoch in-situ and verifies
// that the heap image is identical.
func runAsm(path string, replay bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	mod, err := tir.Assemble(string(src))
	if err != nil {
		return err
	}
	var img1, img2 []byte
	opts := core.Options{}
	if replay {
		opts.OnEpochEnd = func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
			if info.Reason == core.StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return core.Replay
			}
			return core.Proceed
		}
		opts.OnReplayMatched = func(rt *core.Runtime, attempts int) core.Decision {
			img2 = rt.Mem().HeapImage()
			fmt.Printf("replay matched on attempt %d\n", attempts)
			return core.Proceed
		}
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		return err
	}
	rep, err := rt.Run()
	if err != nil {
		return err
	}
	fmt.Printf("exit=%d epochs=%d replays=%d\n", rep.Exit, rep.Stats.Epochs, rep.Stats.Replays)
	if out := rep.Output; out != "" {
		fmt.Printf("output:\n%s", out)
	}
	if replay {
		if d := mem.DiffBytes(img1, img2); d == 0 {
			fmt.Println("replayed heap image is byte-identical")
		} else {
			return fmt.Errorf("replay differed in %d heap bytes", d)
		}
	}
	return nil
}
