// Command ir-fuzz sweeps generated workloads through the differential
// replay-identity harness (internal/gen): each seed deterministically
// draws a small multithreaded program, records it, and checks whole-trace
// replay identity, segment stitching, analyzer ground truth, and identity
// across compression, compaction, and a flight-ring spill.
//
//	ir-fuzz -seeds 200 -workers 4            # CI-style batch, race-free
//	ir-fuzz -seeds 500 -racy-every 4         # every 4th seed plants a race
//	ir-fuzz -seed 1234567                    # reproduce one failing seed
//	ir-fuzz -spec min.genspec                # re-run a checked-in spec
//	ir-fuzz -selftest                        # prove the oracle has teeth
//
// A failure prints the seed and the minimized spec (greedy op-deletion
// shrinker); exit status is 1 when any seed fails, 2 on usage errors.
// Racy generations are genuine data races on VM memory by design — keep
// -racy-every 0 (the default) for host-race-safe runs; see docs/TESTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
)

func main() {
	seeds := flag.Int("seeds", 50, "number of consecutive seeds to sweep")
	start := flag.Int64("start", 0, "first seed of the sweep")
	oneSeed := flag.Int64("seed", -1, "check a single seed and exit (overrides -seeds/-start)")
	spec := flag.String("spec", "", "check a .genspec file instead of generated seeds")
	workers := flag.Int("workers", 0, "parallel seeds (0 = GOMAXPROCS)")
	racyEvery := flag.Int("racy-every", 0, "plant a race in every Nth seed (0 = race-free only, host-race-safe)")
	eventCap := flag.Int("eventcap", 0, "recording event cap per thread (0 = harness default)")
	noShrink := flag.Bool("no-shrink", false, "skip failure minimization")
	selftest := flag.Bool("selftest", false, "tamper recorded traces and verify the oracle catches each mode")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ir-fuzz [-seeds N] [-start S] [-seed N] [-spec FILE] [-workers N] [-racy-every N] [-selftest]")
		os.Exit(2)
	}

	cfg := gen.Config{EventCap: *eventCap}

	switch {
	case *selftest:
		os.Exit(runSelftest(cfg))
	case *spec != "":
		os.Exit(runSpec(cfg, *spec))
	case *oneSeed >= 0:
		mode := gen.ModeRaceFree
		if *racyEvery > 0 {
			mode = gen.ModeRacy
		}
		f := gen.CheckSeed(*oneSeed, mode, cfg, *noShrink)
		if f != nil {
			fmt.Printf("FAIL %s\n", f)
			os.Exit(1)
		}
		fmt.Printf("seed %d ok\n", *oneSeed)
		return
	}

	b := gen.Batch{
		Config:    cfg,
		Start:     *start,
		Seeds:     *seeds,
		Workers:   *workers,
		RacyEvery: *racyEvery,
		NoShrink:  *noShrink,
	}
	if *verbose {
		b.Progress = func(done, failed int) {
			if done%10 == 0 || done == *seeds {
				fmt.Printf("%d/%d seeds, %d failures\n", done, *seeds, failed)
			}
		}
	}
	failures := b.Run()
	for i := range failures {
		fmt.Printf("FAIL %s\n", &failures[i])
	}
	if len(failures) > 0 {
		fmt.Printf("%d/%d seeds failed\n", len(failures), *seeds)
		os.Exit(1)
	}
	fmt.Printf("%d seeds ok (start %d, racy-every %d)\n", *seeds, *start, *racyEvery)
}

// runSpec re-checks one .genspec file — the reproduce-a-regression path.
func runSpec(cfg gen.Config, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ir-fuzz: %v\n", err)
		return 2
	}
	p, err := gen.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ir-fuzz: %s: %v\n", path, err)
		return 2
	}
	if err := cfg.Check(p); err != nil {
		fmt.Printf("FAIL %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s ok\n", path)
	return 0
}

// runSelftest corrupts recorded traces in each supported way and demands
// the harness notice every one — the "oracle has teeth" proof from the
// test suite, runnable standalone.
func runSelftest(cfg gen.Config) int {
	modes := []struct {
		name string
		t    gen.Tamper
	}{
		{"output", gen.TamperOutput},
		{"order", gen.TamperOrder},
		{"drop-epoch", gen.TamperDropEpoch},
	}
	code := 0
	for _, m := range modes {
		c := cfg
		c.Tamper = m.t
		c.MaxReplays = 2
		caught := false
		for seed := int64(0); seed < 50 && !caught; seed++ {
			err := c.Check(gen.Generate(seed, gen.ModeRaceFree))
			switch {
			case err == nil:
				fmt.Printf("FAIL selftest %s: tampered seed %d passed every check\n", m.name, seed)
				code = 1
				caught = true
			case strings.Contains(err.Error(), "tamper:"):
				// This seed's trace was too small to corrupt this way; try the next.
			default:
				fmt.Printf("selftest %s: caught at seed %d: %v\n", m.name, seed, err)
				caught = true
			}
		}
		if !caught {
			fmt.Printf("FAIL selftest %s: no corruptible seed found in 50\n", m.name)
			code = 1
		}
	}
	return code
}
