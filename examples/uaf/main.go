// Command uaf detects a use-after-free with the quarantine detector (§4.2). A
// cache-like workload frees an entry and later writes through the stale
// pointer; freed objects sit canary-filled in per-thread quarantine lists,
// the corruption is discovered at the epoch boundary, and a watchpoint
// replay pinpoints the dangling write.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/detect"
	"repro/internal/tir"
)

// buildCache models an object cache with an eviction bug: the evicted
// entry's buffer is freed, but a stale reference is written afterwards from
// function "refresh_stale_entry".
func buildCache() *ireplayer.Module {
	mb := ireplayer.NewModuleBuilder()

	refresh := mb.Func("refresh_stale_entry", 1)
	v := refresh.NewReg()
	refresh.ConstI(v, 0x5151)
	refresh.Store64(v, refresh.Param(0), 16)
	refresh.Ret(-1)
	refresh.Seal()

	m := mb.Func("main", 0)
	sz, entry, tmp := m.NewReg(), m.NewReg(), m.NewReg()
	// Fill the cache with a few entries.
	m.ConstI(sz, 96)
	m.Intrin(entry, tir.IntrinMalloc, sz)
	for i := 0; i < 3; i++ {
		m.Intrin(tmp, tir.IntrinMalloc, sz)
	}
	// Evict: free the first entry…
	m.Intrin(-1, tir.IntrinFree, entry)
	// …and then "refresh" it through the stale pointer.
	m.Call(-1, refresh.Index(), entry)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	d := detect.New(detect.Config{UseAfterFree: true, QuarantineBudget: 64 << 10})
	rt, err := ireplayer.New(buildCache(), d.Options())
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) == 0 {
		log.Fatal("use-after-free not detected")
	}
	fmt.Printf("detected %d use-after-free violation(s)\n", len(rep.Violations))
	for _, rc := range rep.RootCauses {
		fmt.Print(rc)
	}
}
