// Command racecheck records a racy workload once, then lets the replay-time race
// analyzer name the racing pair. During recording the race is invisible —
// the program's synchronization sequence is deterministic, so nothing
// diverges — but a single offline re-execution of the stored trace with the
// happens-before analyzer attached reports both racing accesses with their
// call stacks, instead of the mere divergence signal of §5.2.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/workloads"
)

func main() {
	// The ground-truth corpus program: two threads increment a shared
	// counter without a lock (racy_inc_a / racy_inc_b).
	c, ok := workloads.AnalysisByName("race-counter")
	if !ok {
		log.Fatal("race-counter missing from the analysis corpus")
	}
	mod := c.Build()

	// Record: stream every epoch's finalized lists into memory — the same
	// hand-off a persistent trace file uses.
	var epochs []*record.EpochLog
	rt, err := ireplayer.New(mod, ireplayer.Options{
		TraceSink: func(ep *record.EpochLog) error { epochs = append(epochs, ep); return nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d epoch(s); replaying with the race analyzer attached\n", len(epochs))

	// Analyze: one deterministic re-execution with the analyzer observing
	// every sync edge and memory access.
	race := analysis.NewRaceDetector()
	if _, _, err := analysis.Run(mod, epochs, core.Options{}, nil, race); err != nil {
		log.Fatal(err)
	}
	findings := race.Findings()
	if len(findings) == 0 {
		log.Fatal("race not detected")
	}
	fmt.Printf("detected %d racing pair(s):\n", len(findings))
	for _, f := range findings {
		fmt.Print(f)
	}
}
