// Command overflow runs a memcached-like workload carrying the paper's Figure 1
// scenario — a heap buffer overflow that corrupts the neighbouring object —
// and let the always-on detector find it, roll the epoch back, and report
// the exact faulting call stack via watchpoints (§4.1), with no human in
// the loop.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/detect"
	"repro/internal/workloads"
)

func main() {
	spec, _ := workloads.ByName("memcached")
	spec.Iters = 40
	mod, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	// The implanted overflow writes one byte past a fresh allocation at the
	// end of main — the §5.2/§5.4 methodology.
	buggy := workloads.ImplantOverflow(mod)

	d := detect.New(detect.Config{Overflow: true})
	rt, err := ireplayer.New(buggy, d.Options())
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		log.Fatal(err)
	}
	spec.SetupOS(rt.OS())

	rep, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	result := d.Report()
	fmt.Printf("run finished: epochs=%d replays=%d\n", rep.Stats.Epochs, rep.Stats.Replays)
	fmt.Printf("violations found: %d\n", len(result.Violations))
	for _, rc := range result.RootCauses {
		fmt.Print(rc)
	}
	if len(result.RootCauses) == 0 {
		log.Fatal("expected the implanted overflow to be caught")
	}
}
