// Command quickstart builds a small multithreaded TIR program through the
// public API, records it, triggers an in-situ replay of the final epoch,
// and verifies byte-identical heap images — the paper's core claim in ~100 lines.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/mem"
	"repro/internal/tir"
)

// buildProgram: four threads each add their thread ID into a lock-protected
// counter 100 times; main returns the total.
func buildProgram() *ireplayer.Module {
	mb := ireplayer.NewModuleBuilder()
	gMutex := mb.Global("mutex", 8)
	gSum := mb.Global("sum", 8)

	w := mb.Func("worker", 1)
	i, lim, cond, ma, sa, v := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
	w.GlobalAddr(ma, gMutex)
	w.GlobalAddr(sa, gSum)
	w.ConstI(i, 0)
	w.ConstI(lim, 100)
	loop, done := w.NewLabel(), w.NewLabel()
	w.Bind(loop)
	w.Bin(tir.LtS, cond, i, lim)
	w.Brz(cond, done)
	w.Intrin(-1, tir.IntrinMutexLock, ma)
	w.Load64(v, sa, 0)
	w.Bin(tir.Add, v, v, w.Param(0))
	w.Store64(v, sa, 0)
	w.Intrin(-1, tir.IntrinMutexUnlock, ma)
	w.AddI(i, i, 1)
	w.Jmp(loop)
	w.Bind(done)
	w.Ret(-1)
	w.Seal()

	m := mb.Func("main", 0)
	fnr, argr := m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(w.Index()))
	tids := make([]tir.Reg, 4)
	for t := 0; t < 4; t++ {
		tids[t] = m.NewReg()
		m.ConstI(argr, int64(t+1))
		m.Intrin(tids[t], tir.IntrinThreadCreate, fnr, argr)
	}
	for t := 0; t < 4; t++ {
		m.Intrin(-1, tir.IntrinThreadJoin, tids[t])
	}
	sum := m.NewReg()
	m.GlobalAddr(sum, gSum)
	m.Load64(sum, sum, 0)
	m.Ret(sum)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func main() {
	var imgOriginal, imgReplay []byte
	opts := ireplayer.Options{
		// At program end, ask for one in-situ re-execution of the final
		// epoch; the runtime rolls every thread back to the checkpoint and
		// replays the recorded synchronization order.
		OnEpochEnd: func(rt *ireplayer.Runtime, info ireplayer.EpochEndInfo) ireplayer.Decision {
			if info.Reason == ireplayer.StopProgramEnd && imgOriginal == nil {
				imgOriginal = rt.Mem().HeapImage()
				return ireplayer.Replay
			}
			return ireplayer.Proceed
		},
		OnReplayMatched: func(rt *ireplayer.Runtime, attempts int) ireplayer.Decision {
			imgReplay = rt.Mem().HeapImage()
			fmt.Printf("replay matched the recorded schedule on attempt %d\n", attempts)
			return ireplayer.Proceed
		},
	}
	rt, err := ireplayer.New(buildProgram(), opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %d (want %d)\n", rep.Exit, 100*(1+2+3+4))
	fmt.Printf("epochs = %d, replays = %d\n", rep.Stats.Epochs, rep.Stats.Replays)
	if d := mem.DiffBytes(imgOriginal, imgReplay); d == 0 {
		fmt.Println("heap image after replay is byte-identical to the original execution")
	} else {
		log.Fatalf("images differ in %d bytes", d)
	}
}
