// Command asm writes a multithreaded program in textual TIR assembly,
// runs it under the recorder, and verifies an identical in-situ replay — the complete
// toolchain (assembler → validator → interpreter → record/replay) in one
// file.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/mem"
	"repro/internal/tir"
)

const program = `
; two workers lock-step a shared counter; main prints and returns it
global mutex 8
global counter 8

func worker/1 regs=7 {
  consti r1, 0        ; i
  consti r2, 250      ; iterations
  consti r3, 1
  globaladdr r4, mutex
  globaladdr r5, counter
loop:
  lts r6, r1, r2
  brz r6, @done
  intrin _, mutex_lock(r4+1)
  load64 r6, [r5+0]
  add r6, r6, r3
  store64 [r5+0], r6
  intrin _, mutex_unlock(r4+1)
  add r1, r1, r3
  jmp @loop
done:
  ret r1
}

func main/0 regs=6 {
  consti r0, 0        ; function index of worker
  consti r1, 0
  intrin r2, thread_create(r0+2)
  intrin r3, thread_create(r0+2)
  intrin _, thread_join(r2+1)
  intrin _, thread_join(r3+1)
  globaladdr r4, counter
  load64 r5, [r4+0]
  intrin _, print(r5+1)
  ret r5
}

entry main
`

func main() {
	mod, err := tir.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	var img1, img2 []byte
	opts := ireplayer.Options{
		OnEpochEnd: func(rt *ireplayer.Runtime, info ireplayer.EpochEndInfo) ireplayer.Decision {
			if info.Reason == ireplayer.StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return ireplayer.Replay
			}
			return ireplayer.Proceed
		},
		OnReplayMatched: func(rt *ireplayer.Runtime, attempts int) ireplayer.Decision {
			img2 = rt.Mem().HeapImage()
			return ireplayer.Proceed
		},
	}
	rt, err := ireplayer.New(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %d (want 500)\n", rep.Exit)
	if d := mem.DiffBytes(img1, img2); d != 0 {
		log.Fatalf("replay differed in %d bytes", d)
	}
	fmt.Println("assembled program replayed identically")
}
