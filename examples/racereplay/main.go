// Command racereplay reproduces a real data race. The Crasher program (§5.2.1)
// races a pointer-nulling thread against a dereferencing thread; when the
// crash fires, the runtime rolls back and searches re-executions until one
// reproduces the recorded schedule — and the crash — exactly (Table 2: the
// paper reproduces 99.87% of crashes on the first replay).
package main

import (
	"errors"
	"fmt"

	"repro"

	"repro/internal/interp"
	"repro/internal/workloads"
)

func main() {
	const runs = 60
	crashes, reproducedTotal := 0, 0
	attemptHist := map[int]int{}

	for i := 0; i < runs; i++ {
		reproduced := false
		attempts := 0
		opts := ireplayer.Options{
			Seed:              int64(i),
			MaxReplays:        500,
			DelayOnDivergence: true,
			OnEpochEnd: func(rt *ireplayer.Runtime, info ireplayer.EpochEndInfo) ireplayer.Decision {
				if info.Reason == ireplayer.StopFault && !reproduced {
					return ireplayer.Replay
				}
				return ireplayer.Proceed
			},
			OnReplayMatched: func(rt *ireplayer.Runtime, a int) ireplayer.Decision {
				reproduced, attempts = true, a
				return ireplayer.Proceed
			},
		}
		rt, err := ireplayer.New(workloads.DefaultCrasher().Build(), opts)
		if err != nil {
			panic(err)
		}
		_, runErr := rt.Run()
		if runErr == nil {
			continue // the race did not fire this run
		}
		var trap *interp.Trap
		if !errors.As(runErr, &trap) {
			panic(runErr)
		}
		crashes++
		if reproduced {
			reproducedTotal++
			attemptHist[attempts]++
		}
	}
	fmt.Printf("runs: %d, crashed: %d, reproduced: %d\n", runs, crashes, reproducedTotal)
	for a := 1; a <= 4; a++ {
		if attemptHist[a] > 0 {
			fmt.Printf("  reproduced on attempt %d: %d\n", a, attemptHist[a])
		}
	}
	if crashes > 0 && reproducedTotal == crashes {
		fmt.Println("every crash was reproduced by the divergence search")
	}
}
